// Tests for the observability layer (obs/trace.h, obs/summary.h,
// io/trace_export.h): span nesting, counter aggregation under ThreadPool
// concurrency, Chrome-trace JSON validity, and disabled-mode no-op
// behaviour.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "io/trace_export.h"
#include "model/workload.h"
#include "obs/summary.h"
#include "obs/trace.h"
#include "sample_attention/sample_attention.h"

namespace sattn {
namespace {

using obs::Collector;
using obs::CounterValue;
using obs::ScopedSpan;
using obs::SpanRecord;
using obs::SpanStat;

// Each test starts from a clean, enabled collector and leaves tracing off.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Collector::global().reset();
    ASSERT_TRUE(obs::set_enabled(true)) << "SATTN_TRACE=0 in the test environment";
  }
  void TearDown() override {
    obs::set_enabled(false);
    Collector::global().reset();
  }
};

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator, enough to assert the Chrome
// trace output is well-formed (objects, arrays, strings with escapes,
// numbers, literals).
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }
  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  bool string() {
    if (!consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return consume('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

double counter_value(const std::vector<CounterValue>& counters, const std::string& name) {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return -1.0;
}

// ---------------------------------------------------------------------------

TEST_F(ObsTest, ScopedSpansRecordOnDestruction) {
  {
    ScopedSpan outer("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto spans = Collector::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_GT(spans[0].dur_us, 0.0);
}

TEST_F(ObsTest, SpanNestingReconstructsPaths) {
  {
    ScopedSpan outer("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      ScopedSpan mid("mid");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ScopedSpan inner("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    {
      ScopedSpan mid2("mid");  // second instance of the same child
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto spans = Collector::global().spans();
  ASSERT_EQ(spans.size(), 4u);

  const std::vector<SpanStat> stats = obs::summarize_spans(spans);
  ASSERT_EQ(stats.size(), 3u);  // outer, outer>mid (x2), outer>mid>inner
  EXPECT_EQ(stats[0].path, "outer");
  EXPECT_EQ(stats[0].depth, 0);
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_EQ(stats[1].path, "outer > mid");
  EXPECT_EQ(stats[1].depth, 1);
  EXPECT_EQ(stats[1].count, 2u);
  EXPECT_EQ(stats[2].path, "outer > mid > inner");
  EXPECT_EQ(stats[2].depth, 2);

  // A child's total cannot exceed its parent's.
  EXPECT_LE(stats[1].total_us, stats[0].total_us);
  EXPECT_LE(stats[2].total_us, stats[1].total_us);
  // Mean/percentiles are consistent with total.
  EXPECT_NEAR(stats[1].mean_us, stats[1].total_us / 2.0, 1e-9);
  EXPECT_LE(stats[1].p50_us, stats[1].p99_us);
}

TEST_F(ObsTest, SiblingSpansDoNotNest) {
  {
    ScopedSpan a("a");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    ScopedSpan b("b");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::vector<SpanStat> stats = obs::summarize_spans(Collector::global().spans());
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].depth, 0);
  EXPECT_EQ(stats[1].depth, 0);
}

TEST_F(ObsTest, TotalSecondsSumsByLeafName) {
  {
    ScopedSpan a("x");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    ScopedSpan b("x");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto spans = Collector::global().spans();
  EXPECT_EQ(obs::span_count(spans, "x"), 2u);
  EXPECT_GT(obs::total_seconds(spans, "x"), 0.0);
  EXPECT_EQ(obs::span_count(spans, "y"), 0u);
  EXPECT_EQ(obs::total_seconds(spans, "y"), 0.0);
}

TEST_F(ObsTest, SpansFromWorkerThreadsCarryDistinctTids) {
  ThreadPool pool(3);
  pool.parallel_for(64, [](Index) {
    ScopedSpan s("worker_span");
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  });
  const auto spans = Collector::global().spans();
  EXPECT_EQ(spans.size(), 64u);
  for (const SpanRecord& r : spans) EXPECT_EQ(r.name, "worker_span");
}

TEST_F(ObsTest, CounterAggregationIsRaceFreeAcrossWorkers) {
  ThreadPool pool(4);
  pool.parallel_for(10000, [](Index i) {
    SATTN_COUNTER_ADD("obs_test.adds", 1);
    SATTN_COUNTER_ADD("obs_test.weighted", static_cast<double>(i % 2));
  });
  const auto counters = Collector::global().counters();
  EXPECT_DOUBLE_EQ(counter_value(counters, "obs_test.adds"), 10000.0);
  EXPECT_DOUBLE_EQ(counter_value(counters, "obs_test.weighted"), 5000.0);
}

TEST_F(ObsTest, CounterMaxKeepsRunningMaximum) {
  ThreadPool pool(4);
  pool.parallel_for(1000, [](Index i) { SATTN_COUNTER_MAX("obs_test.peak", i); });
  EXPECT_DOUBLE_EQ(Collector::global().counter("obs_test.peak").value(), 999.0);
  // Lower values never decrease it.
  SATTN_COUNTER_MAX("obs_test.peak", 5);
  EXPECT_DOUBLE_EQ(Collector::global().counter("obs_test.peak").value(), 999.0);
}

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  obs::set_enabled(false);
  {
    ScopedSpan s("ghost");
    SATTN_COUNTER_ADD("obs_test.ghost", 1);
  }
  EXPECT_TRUE(Collector::global().spans().empty());
  const auto counters = Collector::global().counters();
  EXPECT_EQ(counter_value(counters, "obs_test.ghost"), -1.0);
}

TEST_F(ObsTest, SpanOpenedWhileEnabledClosesCleanlyAfterDisable) {
  auto span = std::make_unique<ScopedSpan>("toggle");
  obs::set_enabled(false);
  span.reset();  // must still pop its stack entry without crashing
  obs::set_enabled(true);
  const auto spans = Collector::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "toggle");
}

TEST_F(ObsTest, ResetClearsSpansAndZeroesCounters) {
  {
    ScopedSpan s("gone");
  }
  SATTN_COUNTER_ADD("obs_test.reset_me", 7);
  Collector::global().reset();
  EXPECT_TRUE(Collector::global().spans().empty());
  EXPECT_DOUBLE_EQ(Collector::global().counter("obs_test.reset_me").value(), 0.0);
}

TEST_F(ObsTest, ChromeTraceJsonIsParsable) {
  {
    ScopedSpan outer("outer \"quoted\" name\n");  // exercises escaping
    ScopedSpan inner("inner");
    SATTN_COUNTER_ADD("obs_test.count", 3);
  }
  const std::string json =
      chrome_trace_json(Collector::global().spans(), Collector::global().counters());
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("obs_test.count"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceJsonValidWhenEmpty) {
  const std::string json = chrome_trace_json({}, {});
  JsonValidator v(json);
  EXPECT_TRUE(v.valid()) << json;
}

TEST_F(ObsTest, WriteChromeTraceRoundTrips) {
  {
    ScopedSpan s("file_span");
  }
  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  JsonValidator v(content);
  EXPECT_TRUE(v.valid());
  EXPECT_NE(content.find("file_span"), std::string::npos);
}

TEST_F(ObsTest, RenderSummaryMentionsSpansAndCounters) {
  {
    ScopedSpan s("visible_span");
  }
  SATTN_COUNTER_ADD("obs_test.visible_counter", 42);
  const std::string text = obs::render_summary(Collector::global().spans(),
                                               Collector::global().counters());
  EXPECT_NE(text.find("visible_span"), std::string::npos);
  EXPECT_NE(text.find("obs_test.visible_counter"), std::string::npos);
}

TEST_F(ObsTest, InstrumentedLibraryEmitsExpectedSpanNames) {
  // End-to-end: running the SampleAttention pipeline under tracing produces
  // the stage spans and counters docs/OBSERVABILITY.md promises.
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(7, 512), 8, 3);
  const SampleAttention method;
  const AttentionResult res = method.run(in);
  EXPECT_GT(res.density, 0.0);

  const auto spans = Collector::global().spans();
  EXPECT_EQ(obs::span_count(spans, "method/SampleAttention(a=0.95)"), 1u);
  EXPECT_GE(obs::span_count(spans, "sattn/stage1_sampling"), 1u);
  EXPECT_GE(obs::span_count(spans, "sattn/stage2_filtering"), 1u);
  EXPECT_GE(obs::span_count(spans, "kernel/sparse_flash"), 1u);
  const auto counters = Collector::global().counters();
  EXPECT_GT(counter_value(counters, "sattn.sampled_rows"), 0.0);
  EXPECT_GT(counter_value(counters, "sattn.retained_kv_columns"), 0.0);
}

TEST_F(ObsTest, UnbalancedEndSpanIsDefensivelyIgnored) {
  Collector::global().end_span();  // no matching begin: must not crash
  EXPECT_TRUE(Collector::global().spans().empty());
}

}  // namespace
}  // namespace sattn
