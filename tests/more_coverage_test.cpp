// Additional coverage: fidelity-mode batch evaluation, eviction edge cases,
// wall timer, chunked-sample density accounting, and window-band density
// closed form.
#include <gtest/gtest.h>

#include <thread>

#include "sattn.h"

namespace sattn {
namespace {

TEST(MoreCoverage, MultiEvaluatorFidelityMode) {
  const ModelConfig model = chatglm2_6b();
  TaskInstance inst;
  inst.family = "summarization";
  inst.content = plain_prompt(1, 192);
  inst.mode = ScoreMode::kFidelity;
  const FullAttention full;
  const StreamingLLM streaming;
  const std::vector<const AttentionMethod*> methods = {&full, &streaming};
  const std::vector<TaskInstance> suite = {inst};
  const auto scores = evaluate_suite_multi(model, methods, suite);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_NEAR(scores[0], 1.0, 1e-6);
  EXPECT_LT(scores[1], scores[0]);
  EXPECT_GT(scores[1], 0.0);
}

TEST(MoreCoverage, H2OBudgetSmallerThanRecentIsRejectedByContract) {
  // The constructor contract requires recent < budget; verify the boundary
  // case budget = recent + 1 still works.
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(2, 64), 8, 3);
  KVCache cache(model.head_dim);
  ASSERT_TRUE(cache.append_prefill(in).ok());
  H2OPolicy policy(9, 8);
  std::vector<float> w(64, 1.0f / 64.0f);
  policy.observe(cache, w);
  EXPECT_TRUE(policy.enforce(cache));
  EXPECT_EQ(cache.size(), 9);
}

TEST(MoreCoverage, SinkRecentNoopWhenSmall) {
  KVCache cache(4);
  std::vector<float> row = {1, 2, 3, 4};
  ASSERT_TRUE(cache.append(0, row, row).ok());
  SinkRecentPolicy policy(4, 8);
  EXPECT_FALSE(policy.enforce(cache));
  EXPECT_EQ(cache.size(), 1);
}

TEST(MoreCoverage, WallTimerMeasuresElapsed) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(MoreCoverage, ChunkedSampleDensityBelowOne) {
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(3, 384), 8, 3);
  const ChunkedPrefillResult res = chunked_sample_prefill(in, 128, SampleAttentionConfig{}).value();
  EXPECT_EQ(res.chunks, 3);
  EXPECT_GT(res.mean_density, 0.0);
  EXPECT_LT(res.mean_density, 1.0);
}

TEST(MoreCoverage, WindowBandDensityClosedForm) {
  // Brute-force check of the closed form against StructuredMask::density.
  for (Index s : {16, 100, 257}) {
    for (double ratio : {0.04, 0.08, 0.5, 1.0}) {
      StructuredMask m(s, s);
      m.set_window(window_width_from_ratio(s, ratio));
      EXPECT_NEAR(window_band_density(s, ratio), m.density(), 1e-9)
          << "s=" << s << " ratio=" << ratio;
    }
  }
}

TEST(MoreCoverage, PrefillReportLayerStride) {
  const ModelConfig model = chatglm2_6b();
  PrefillOptions opts;
  opts.heads_per_layer = 1;
  opts.layer_stride = 13;  // layers 0, 13, 26
  const PrefillReport r = run_prefill(model, plain_prompt(4, 128), FlashAttention{}, opts).value();
  ASSERT_EQ(r.layers.size(), 3u);
  EXPECT_EQ(r.layers[1], 13);
  EXPECT_EQ(r.heads_run, 3);
}

TEST(MoreCoverage, EngineSdpaDefaultsSane) {
  Engine e;
  EXPECT_GT(e.prefill_seconds(8192), 0.0);
}

TEST(MoreCoverage, SignatureRetrievalThresholdBoundary) {
  // Exactly at the threshold the correlation must count as recovered
  // (>= semantics would fail this; the implementation uses < to reject).
  ContentSpec content = plain_prompt(5, 64);
  const Index pos = 10;
  const auto sig = signature_vector(16, content.seed, pos);
  EvalOptions opts;
  std::vector<float> out(16);
  for (std::size_t t = 0; t < 16; ++t) {
    out[t] = static_cast<float>(sig[t] * (opts.abs_threshold + 0.01));
  }
  EXPECT_TRUE(fact_recovered(out, content, pos, opts));
}

}  // namespace
}  // namespace sattn
