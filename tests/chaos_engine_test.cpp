// Deterministic chaos harness for the live ServingEngine
// (docs/ROBUSTNESS.md, "Lifecycle, overload & chaos").
//
// Each scenario drives the real engine — loop thread, ragged sweeps,
// measured time — through a storm it must survive: seeded chunk-fault
// storms, overload bursts well past capacity, deadline storms, mid-stream
// cancellations, KV memory pressure, runaway requests, faulting planners,
// and bounded shutdown. The invariants are the lifecycle contract itself:
//
//   1. Every submitted request reaches EXACTLY ONE terminal state
//      (completed | shed | cancelled) — no loss, no duplication, no
//      deadlock (the suite simply finishing pins the last one).
//   2. queue + compute + guard == ttft for every completed AND cancelled
//      record, with a non-negative queue residual.
//   3. The engine.* / sched.* counters reconcile with the result lists.
//   4. Two runs with the same spec produce the same outcome multiset,
//      regardless of concurrent submit interleaving (per-request fault
//      seeding, FaultSpec::for_request).
//
// Kept fast enough to run as a default ctest entry and under
// ASan/UBSan/TSan (scripts/check_sanitizers.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "attention/flash_attention.h"
#include "core/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "runtime/batch.h"
#include "runtime/decode.h"
#include "runtime/engine.h"
#include "runtime/eviction.h"
#include "runtime/kv_cache.h"

namespace sattn {
namespace {

class ChaosObs : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
    ASSERT_TRUE(obs::set_enabled(true)) << "SATTN_TRACE=0 in the test environment";
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
  }

  static double counter_value(const std::string& name) {
    for (const obs::CounterValue& cv : obs::Collector::global().counters())
      if (cv.name == name) return cv.value;
    return 0.0;
  }
};

EngineOptions chaos_engine() {
  EngineOptions opts;
  opts.mode = EngineMode::kDense;
  opts.head_dim = 32;
  opts.chunk_tokens = 64;
  opts.max_batch = 4;
  opts.decode_tokens = 2;
  opts.run_label.clear();  // no per-request gauges: chaos runs submit many
  return opts;
}

// The attribution identity, asserted to fp tolerance: the engine computes
// queue as the exact residual, so this really pins "compute and guard never
// exceed the request's wall time" (non-negative queue).
void expect_attribution_identity(const CompletedRequest& r, const std::string& what) {
  EXPECT_NEAR(r.queue_seconds + r.compute_seconds + r.guard_seconds, r.ttft(), 1e-9)
      << what << " " << r.request.id;
  EXPECT_GE(r.queue_seconds, -1e-9) << what << " " << r.request.id;
  EXPECT_GE(r.compute_seconds, 0.0) << what << " " << r.request.id;
  EXPECT_GE(r.guard_seconds, 0.0) << what << " " << r.request.id;
}

// ---------------------------------------------------------------------------
// The storm: faults + overload burst + deadline storm + mid-stream cancels.

TEST_F(ChaosObs, StormEveryRequestReachesExactlyOneTerminalState) {
  constexpr int kRequests = 24;  // 6x max_batch, submitted all at once
  EngineOptions opts = chaos_engine();
  opts.head_dim = 64;  // chunks heavy enough that the burst takes real time
  opts.fault = {FaultClass::kTensorNaN, 0.3, 0xc4a05ull, /*max_fires=*/-1};
  opts.max_retries = 2;
  opts.retry_backoff_seconds = 0.001;
  opts.deadline_seconds = 0.05;  // deadline storm: the overloaded tail blows it
  ServingEngine engine(opts);
  engine.start();

  // Overload burst: four submitter threads race all requests onto the
  // intake at once, while a canceller thread pulls 25% of them back
  // mid-stream (plus ids that never existed — must be no-ops). Two cancels
  // are issued before their requests are even submitted: a cancel racing
  // ahead of its submit must still land (deterministically, whatever the
  // machine load), so at least two requests always reach kCancelled.
  std::vector<std::string> ids;
  for (int i = 0; i < kRequests; ++i) ids.push_back("c" + std::to_string(i));
  engine.cancel(ids[19]);
  engine.cancel(ids[23]);
  std::atomic<int> next{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (;;) {
        const int n = next.fetch_add(1);
        if (n >= kRequests) return;
        ASSERT_TRUE(
            engine.submit({ids[static_cast<std::size_t>(n)], 256 + 128 * (n % 3), 0.0}).ok());
      }
    });
  }
  std::thread canceller([&] {
    engine.cancel("never-submitted");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    for (int i = 0; i < kRequests; i += 4) engine.cancel(ids[static_cast<std::size_t>(i)]);
    engine.cancel("also-never-submitted");
  });  // 6 mid-stream + 2 ahead-of-submit cancels = 1/3 of the storm
  for (std::thread& t : submitters) t.join();
  canceller.join();
  const EngineResult res = engine.finish();

  // Invariant 1: exactly one terminal state per submitted id, and nothing
  // that was never submitted.
  std::vector<std::string> terminal;
  for (const auto& [id, state] : res.outcomes()) terminal.push_back(id);
  ASSERT_EQ(terminal.size(), static_cast<std::size_t>(kRequests));
  std::sort(terminal.begin(), terminal.end());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(terminal, ids);

  // Invariant 2: the attribution identity on every completed and cancelled
  // record (cancels included: finish = the cancel instant).
  for (const EngineCompletion& c : res.completed) expect_attribution_identity(c.base, "completed");
  for (const CancelledRequest& c : res.cancelled) {
    expect_attribution_identity(c.base, "cancelled");
    EXPECT_EQ(c.reason, "cancel");
  }

  // Invariant 3: counters reconcile with the result lists.
  EXPECT_EQ(counter_value("sched.requests_completed"), static_cast<double>(res.completed.size()));
  EXPECT_EQ(counter_value("sched.requests_shed"), static_cast<double>(res.shed.size()));
  EXPECT_EQ(counter_value("engine.requests_cancelled"), static_cast<double>(res.cancelled.size()));
  EXPECT_EQ(counter_value("sched.request_retries"), static_cast<double>(res.retries));

  // The storm must actually have stormed: faults fired (retries or
  // retry-exhausted sheds) and cancels landed.
  EXPECT_GT(res.retries + static_cast<Index>(res.shed.size()), 0);
  EXPECT_GE(res.cancelled.size(), 2u);  // the ahead-of-submit cancels at minimum
}

TEST_F(ChaosObs, StormWithSharedPrefixArenaLeaksNoPages) {
  // A faulted, cancelled, concurrently-submitted storm over a SHARED page
  // arena: half the requests carry a common "sys" segment so prefix pages
  // are published, attached, and COW-released while requests retry and die
  // mid-flight. The pin: after the engine is gone, the arena holds exactly
  // the index-published pages — alloc minus freed equals live (no leak),
  // and release() asserts inside the arena catch any double free.
  constexpr int kRequests = 24;
  EngineOptions opts = chaos_engine();
  opts.fault = {FaultClass::kTensorNaN, 0.2, 0x9a6e5ull, /*max_fires=*/6};
  opts.max_retries = 2;
  opts.retry_backoff_seconds = 0.001;
  // KV backpressure stages admission (~4 requests' worth of pages at a
  // time), so later shared-segment requests admit after the first publish
  // and actually hit the prefix index mid-storm.
  opts.kv_budget_bytes = 4.0 * 256.0 * (2.0 * opts.head_dim * sizeof(float));
  auto arena = std::make_shared<KvPageArena>(opts.head_dim, opts.kv_page_tokens);
  opts.kv_arena = arena;
  const std::vector<ContentSegment> sys = {{"sys", 128}};
  {
    ServingEngine engine(opts);
    engine.start();
    std::vector<std::string> ids;
    for (int i = 0; i < kRequests; ++i) ids.push_back("p" + std::to_string(i));
    std::atomic<int> next{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        for (;;) {
          const int n = next.fetch_add(1);
          if (n >= kRequests) return;
          // Even requests share the system segment; odd ones are private.
          ServingRequest req(ids[static_cast<std::size_t>(n)], 192 + 64 * (n % 2), 0.0,
                             n % 2 == 0 ? sys : std::vector<ContentSegment>{});
          ASSERT_TRUE(engine.submit(std::move(req)).ok());
        }
      });
    }
    // Cancel only odd (private) ids: the shared-segment requests complete
    // deterministically, so the index is guaranteed to end up populated.
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      for (int i = 1; i < kRequests; i += 4) engine.cancel(ids[static_cast<std::size_t>(i)]);
    });
    for (std::thread& t : submitters) t.join();
    canceller.join();
    const EngineResult res = engine.finish();

    std::vector<std::string> terminal;
    for (const auto& [id, state] : res.outcomes()) terminal.push_back(id);
    ASSERT_EQ(terminal.size(), static_cast<std::size_t>(kRequests));
    std::sort(terminal.begin(), terminal.end());
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(terminal, ids);
    EXPECT_GT(res.kv_prefix_hits, 0);  // sharing actually happened
  }

  // Engine destroyed: every per-request cache released its pages. What
  // remains live is exactly the published prefix set, counted once.
  EXPECT_GT(arena->prefix_entries(), 0);
  EXPECT_EQ(arena->pages_live(), arena->prefix_entries());
  EXPECT_EQ(arena->pages_allocated() - arena->pages_freed(), arena->pages_live());

  // The published pages are still attachable: a fresh engine over the same
  // arena gets the full shared segment (two 64-token pages) for free.
  ServingEngine fresh(opts);
  const std::vector<ServingRequest> warm = {{"fresh", 256, 0.0, sys}};
  const EngineResult wres = fresh.run_trace(warm);
  ASSERT_EQ(wres.completed.size(), 1u);
  EXPECT_EQ(wres.completed[0].prefix_hit_tokens, 128);
}

// ---------------------------------------------------------------------------
// Determinism: same spec => same outcome multiset, any submit interleaving.

TEST(ChaosEngine, SameSeedStormsProduceIdenticalOutcomeMultisets) {
  // Chunk faults at 50% with per-request seeding: whether request "d7"
  // retries, and how often, depends only on (spec, "d7"), never on which
  // submitter thread won the race or how batches interleaved. Two runs with
  // maximally different submit interleavings must agree on every outcome.
  const auto run_storm = [](bool reverse_submit_order) {
    EngineOptions opts;
    opts.mode = EngineMode::kDense;
    opts.head_dim = 32;
    opts.chunk_tokens = 64;
    opts.max_batch = 4;
    opts.decode_tokens = 2;
    opts.run_label.clear();
    opts.fault = {FaultClass::kTensorNaN, 0.5, 0xd5eedull, /*max_fires=*/-1};
    opts.max_retries = 1;  // some requests exhaust retries and shed
    opts.retry_backoff_seconds = 0.001;
    ServingEngine engine(opts);
    engine.start();
    constexpr int kRequests = 16;
    for (int i = 0; i < kRequests; ++i) {
      const int n = reverse_submit_order ? kRequests - 1 - i : i;
      EXPECT_TRUE(engine.submit({"d" + std::to_string(n), 64 + 64 * (n % 2), 0.0}).ok());
    }
    return engine.finish();
  };
  const EngineResult a = run_storm(false);
  const EngineResult b = run_storm(true);

  // (id, state) multisets match...
  auto outcomes_a = a.outcomes();
  auto outcomes_b = b.outcomes();
  std::sort(outcomes_a.begin(), outcomes_a.end());
  std::sort(outcomes_b.begin(), outcomes_b.end());
  EXPECT_EQ(outcomes_a, outcomes_b);

  // ...and so do the per-request fault histories: attempts per completion,
  // reason per shed.
  const auto attempts_of = [](const EngineResult& r) {
    std::vector<std::pair<std::string, int>> v;
    for (const EngineCompletion& c : r.completed) v.emplace_back(c.base.request.id, c.base.attempts);
    std::sort(v.begin(), v.end());
    return v;
  };
  const auto sheds_of = [](const EngineResult& r) {
    std::vector<std::pair<std::string, std::string>> v;
    for (const ShedRequest& s : r.shed) v.emplace_back(s.request.id, s.reason);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(attempts_of(a), attempts_of(b));
  EXPECT_EQ(sheds_of(a), sheds_of(b));
  EXPECT_GT(a.retries, 0);  // the storm was live, not vacuous
}

// ---------------------------------------------------------------------------
// KV memory budget: backpressure and the eviction rung.

TEST_F(ChaosObs, KvBudgetBackpressureServesEveryoneWithoutDeadlock) {
  // 12 x 256-token requests want 12 x 64 KiB of KV; the budget holds ~3.
  // Later arrivals must wait (backpressure), the eviction rung must compact
  // decoding caches to admit them sooner, nobody may shed, and the test
  // finishing at all pins "no deadlock".
  EngineOptions opts = chaos_engine();
  opts.decode_tokens = 8;
  const double per_request = 2.0 * 256 * 32 * 4;  // K+V, fp32
  opts.kv_budget_bytes = 3.0 * per_request;
  opts.kv_eviction = EvictionKind::kSinkRecent;
  opts.kv_evict_keep = 96;
  opts.kv_evict_recent = 64;
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace;
  for (int i = 0; i < 12; ++i) trace.push_back({"kv" + std::to_string(i), 256, 0.0});
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.completed.size(), trace.size());
  EXPECT_TRUE(res.shed.empty());
  EXPECT_GT(res.kv_pressure_waits, 0);
  EXPECT_GT(res.kv_evictions, 0);  // retention degraded before anyone shed
  EXPECT_LE(res.peak_kv_bytes, opts.kv_budget_bytes + 1e-6);
  EXPECT_GT(res.peak_kv_bytes, 0.0);
  EXPECT_EQ(counter_value("engine.kv_evictions"), static_cast<double>(res.kv_evictions));
  EXPECT_EQ(counter_value("engine.kv_pressure_waits"), static_cast<double>(res.kv_pressure_waits));
  EXPECT_GT(counter_value("kv_cache.evicted_slots"), 0.0);
  for (const EngineCompletion& c : res.completed) expect_attribution_identity(c.base, "kv");
}

TEST_F(ChaosObs, KvBudgetShedsOnlyRequestsThatCanNeverFit) {
  // A request whose solo KV demand exceeds the whole budget sheds
  // ("kv_budget"); one that fits completes. That shed is the deadlock
  // escape hatch — nothing else may shed on memory.
  EngineOptions opts = chaos_engine();
  const double per_token = 2.0 * 32 * 4;
  opts.kv_budget_bytes = 128 * per_token;  // fits 128 tokens of KV
  opts.kv_eviction = EvictionKind::kNone;  // no rung: pure budget math
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace = {{"huge", 256, 0.0}, {"ok", 64, 0.0}};
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.shed.size(), 1u);
  EXPECT_EQ(res.shed[0].request.id, "huge");
  EXPECT_EQ(res.shed[0].reason, "kv_budget");
  ASSERT_EQ(res.completed.size(), 1u);
  EXPECT_EQ(res.completed[0].base.request.id, "ok");
  EXPECT_EQ(counter_value("engine.kv_budget_sheds"), 1.0);
}

// ---------------------------------------------------------------------------
// Cancellation.

TEST_F(ChaosObs, MidStreamCancelDuringRetryBackoffRefundsUnservedGuard) {
  // The only request faults on its first (and only) prefill chunk, entering
  // a long retry backoff billed to guard upfront. Cancelling mid-backoff
  // must refund the un-elapsed part of that gate: the cancelled record's
  // guard is far below the full backoff, and the identity still holds.
  EngineOptions opts = chaos_engine();
  opts.fault = {FaultClass::kTensorNaN, 1.0, 0x1ull, /*max_fires=*/1};
  opts.max_retries = 3;
  opts.retry_backoff_seconds = 0.2;
  ServingEngine engine(opts);
  engine.start();
  ASSERT_TRUE(engine.submit({"slow", 64, 0.0}).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.cancel("slow");
  const EngineResult res = engine.finish();

  ASSERT_EQ(res.cancelled.size(), 1u);
  const CancelledRequest& c = res.cancelled[0];
  EXPECT_EQ(c.base.request.id, "slow");
  EXPECT_EQ(c.reason, "cancel");
  EXPECT_EQ(c.decoded_tokens, 0);
  expect_attribution_identity(c.base, "cancelled");
  // Refund: only the ~50ms that elapsed (plus the lost chunk) stays billed,
  // not the full 200ms gate.
  EXPECT_LT(c.base.guard_seconds, 0.19);
  EXPECT_TRUE(res.completed.empty());
  EXPECT_TRUE(res.shed.empty());
  EXPECT_EQ(counter_value("engine.requests_cancelled"), 1.0);
}

TEST(ChaosEngine, CancellingUnknownOrForeignIdsIsANoOp) {
  EngineOptions opts = chaos_engine();
  ServingEngine engine(opts);
  engine.start();
  engine.cancel("ghost");  // cancel racing ahead of any submit
  ASSERT_TRUE(engine.submit({"real", 64, 0.0}).ok());
  engine.cancel("another-ghost");
  const EngineResult res = engine.finish();

  ASSERT_EQ(res.completed.size(), 1u);
  EXPECT_EQ(res.completed[0].base.request.id, "real");
  EXPECT_TRUE(res.cancelled.empty());
  EXPECT_TRUE(res.shed.empty());
}

// ---------------------------------------------------------------------------
// Watchdog and circuit breaker.

TEST_F(ChaosObs, WatchdogFlagsAStalledLoop) {
  // One monolithic 1536-token chunk keeps the loop inside a single sweep
  // for far longer than the stall threshold; the watchdog (which only ever
  // reads atomics) must flag it at least once, and the run still completes.
  EngineOptions opts = chaos_engine();
  opts.head_dim = 64;
  opts.chunk_tokens = 1536;
  opts.decode_tokens = 0;
  opts.watchdog_stall_seconds = 0.002;
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace = {{"stall", 1536, 0.0}};
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.completed.size(), 1u);
  EXPECT_GE(res.watchdog_stalls, 1);
  EXPECT_EQ(counter_value("engine.watchdog_stalls"), static_cast<double>(res.watchdog_stalls));
}

TEST_F(ChaosObs, WatchdogShedsRunawayRequests) {
  // The cost model promises near-instant prefill; reality takes multiple
  // chunks of real kernel time. With watchdog_cost_multiple armed, the
  // runaway is shed between chunks instead of occupying the batch forever.
  EngineOptions opts = chaos_engine();
  opts.decode_tokens = 0;
  opts.projected_prefill_seconds = [](Index, double) { return 1e-7; };
  opts.watchdog_cost_multiple = 2.0;
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace = {{"runaway", 256, 0.0}};  // 4 chunks
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.shed.size(), 1u);
  EXPECT_EQ(res.shed[0].reason, "watchdog");
  EXPECT_TRUE(res.completed.empty());
  EXPECT_EQ(counter_value("engine.watchdog_sheds"), 1.0);
}

TEST_F(ChaosObs, BreakerTripsOnConsecutivePlanFaultsAndShortCircuitsToDense) {
  // Every plan is corrupted, so every chunk's planning episode exhausts the
  // escalation ladder. After breaker_fault_threshold consecutive
  // exhaustions the breaker opens and the remaining chunks short-circuit
  // straight to dense — no more guard time burned on a dead planner.
  EngineOptions opts = chaos_engine();
  opts.mode = EngineMode::kSampleAttention;
  opts.decode_tokens = 0;
  opts.breaker_fault_threshold = 2;
  opts.breaker_cooldown_seconds = 60.0;  // stays open for the whole run
  auto injector = std::make_shared<FaultInjector>(
      FaultSpec{FaultClass::kPlanEmptyStripes, 1.0, 0x9ull, /*max_fires=*/-1});
  opts.guard.plan_hook = [injector](SamplePlan& plan) { injector->corrupt_plan(plan); };
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace = {{"brk", 256, 0.0}};  // 4 chunk episodes
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.completed.size(), 1u);
  EXPECT_EQ(res.breaker_trips, 1);
  EXPECT_EQ(counter_value("engine.breaker_trips"), 1.0);
  // Episodes 3 and 4 hit the open breaker.
  EXPECT_EQ(counter_value("engine.breaker_short_circuits"), 2.0);
  // Exactly the first two episodes ran (and exhausted) the ladder.
  const double rejects = counter_value("engine.plan_rejects");
  EXPECT_GT(rejects, 0.0);
  EXPECT_EQ(counter_value("engine.dense_fallbacks"), 4.0);
}

TEST_F(ChaosObs, BreakerProbesHalfOpenAndClosesWhenThePlannerRecovers) {
  // The planner faults long enough to trip the breaker, then recovers. With
  // a zero cooldown the next episode probes half-open, the accepted plan
  // closes the breaker, and planning resumes for the rest of the run.
  EngineOptions opts = chaos_engine();
  opts.mode = EngineMode::kSampleAttention;
  opts.decode_tokens = 0;
  opts.breaker_fault_threshold = 1;
  opts.breaker_cooldown_seconds = 0.0;
  // Corrupt every attempt of the FIRST planning episode only. One episode
  // makes 1 + max_resamples + max_widens attempts when all are rejected.
  const int attempts_per_episode = 1 + static_cast<int>(opts.guard.max_resamples) +
                                   static_cast<int>(opts.guard.max_widens);
  auto injector = std::make_shared<FaultInjector>(
      FaultSpec{FaultClass::kPlanEmptyStripes, 1.0, 0x9ull, attempts_per_episode});
  opts.guard.plan_hook = [injector](SamplePlan& plan) { injector->corrupt_plan(plan); };
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace = {{"rcv", 256, 0.0}};
  const EngineResult res = engine.run_trace(trace);

  ASSERT_EQ(res.completed.size(), 1u);
  EXPECT_EQ(res.breaker_trips, 1);
  EXPECT_EQ(counter_value("engine.breaker_closes"), 1.0);
  EXPECT_EQ(counter_value("engine.breaker_short_circuits"), 0.0);
  // Only the first episode fell back to dense; the rest planned normally.
  EXPECT_EQ(counter_value("engine.dense_fallbacks"), 1.0);
}

// ---------------------------------------------------------------------------
// Bounded drain.

TEST_F(ChaosObs, DrainDeadlineForceCancelsStragglersAndFinishIsIdempotent) {
  // Every chunk faults forever with a 10s backoff: the request can never
  // finish on its own. A bounded finish() must come back almost
  // immediately, force-cancelling the straggler with reason "shutdown", and
  // calling finish() again must return the same result.
  EngineOptions opts = chaos_engine();
  opts.fault = {FaultClass::kTensorNaN, 1.0, 0x2ull, /*max_fires=*/-1};
  opts.max_retries = 1000;
  opts.retry_backoff_seconds = 10.0;
  ServingEngine engine(opts);
  engine.start();
  ASSERT_TRUE(engine.submit({"straggler", 64, 0.0}).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto t0 = std::chrono::steady_clock::now();
  const EngineResult res = engine.finish(/*drain_deadline_seconds=*/0.01);
  const double finish_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  EXPECT_LT(finish_s, 5.0) << "bounded drain must not wait out the 10s backoff";
  ASSERT_EQ(res.cancelled.size(), 1u);
  EXPECT_EQ(res.cancelled[0].base.request.id, "straggler");
  EXPECT_EQ(res.cancelled[0].reason, "shutdown");
  expect_attribution_identity(res.cancelled[0].base, "shutdown");

  const EngineResult again = engine.finish();
  EXPECT_EQ(again.cancelled.size(), res.cancelled.size());
  EXPECT_EQ(again.completed.size(), res.completed.size());
  EXPECT_EQ(again.shed.size(), res.shed.size());
}

// ---------------------------------------------------------------------------
// Eviction-under-decode parity: compaction keeps the batched kernels exact.

TEST(ChaosEviction, CompactedCacheKeepsSweepBitIdenticalToDirectKernels) {
  // Mid-stream compaction (the engine's pressure rung) must not perturb
  // decode math: after H2O or SinkRecent evicts, a decode step through
  // ragged_attention_sweep over the compacted cache is bit-identical to
  // flash_rows run directly on the same retained slots.
  const Index s = 256, d = 32;
  AttentionInput in;
  in.q.resize(s, d);
  in.k.resize(s, d);
  in.v.resize(s, d);
  Rng rng(0xeeffull);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  Matrix q = Matrix(1, d);
  for (float& x : q.row(0)) x = static_cast<float>(rng.uniform() * 2.0 - 1.0);

  for (const EvictionKind kind : {EvictionKind::kSinkRecent, EvictionKind::kH2O}) {
    KVCache cache(d);
    ASSERT_TRUE(cache.append_prefill(in).ok());
    auto policy = make_eviction_policy(kind, /*keep_budget=*/96, /*recent=*/64);
    ASSERT_NE(policy, nullptr);
    if (kind == EvictionKind::kH2O) {
      // H2O needs real observed weights to rank heavy hitters.
      std::vector<float> weights, scratch(static_cast<std::size_t>(d), 0.0f);
      ASSERT_TRUE(decode_attention(q.row(0), cache, scratch, &weights).ok());
      policy->observe(cache, weights);
    }
    ASSERT_TRUE(policy->enforce(cache));
    ASSERT_LE(cache.size(), 96);

    std::vector<float> ref(static_cast<std::size_t>(d), 0.0f);
    std::vector<float> got(static_cast<std::size_t>(d), 0.0f);
    const mk::KvView kv = cache.view();  // paged view over the compacted table
    flash_rows(q.data(), 1, kv, cache.size(), cache.size() - 1, ref.data(), d);

    RaggedBatchView batch;
    RaggedSeq seq;
    seq.route = SeqRoute::kDense;
    seq.q = q.data();
    seq.rows = 1;
    seq.kv = kv;
    seq.k_hi = cache.size();
    seq.causal_off = cache.size() - 1;
    seq.out = got.data();
    batch.seqs.push_back(seq);
    ragged_attention_sweep(batch);
    ASSERT_EQ(std::memcmp(ref.data(), got.data(), ref.size() * sizeof(float)), 0)
        << "eviction kind " << eviction_kind_name(kind);
  }
}

}  // namespace
}  // namespace sattn
