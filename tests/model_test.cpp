// Tests for the synthetic model substrate: configs, head profiles, the
// structured generator's statistical properties, and workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "attention/score_utils.h"
#include "metrics/sparsity.h"
#include "model/workload.h"

namespace sattn {
namespace {

TEST(ModelConfig, PresetsMatchPaperArchitectures) {
  const ModelConfig glm = chatglm2_6b();
  EXPECT_EQ(glm.n_layers, 28);
  EXPECT_EQ(glm.n_heads, 32);
  EXPECT_EQ(glm.head_dim, 128);
  EXPECT_EQ(glm.context_window, 96 * 1024);

  const ModelConfig intern = internlm2_7b();
  EXPECT_EQ(intern.n_layers, 32);
  EXPECT_EQ(intern.n_heads, 32);
  EXPECT_EQ(intern.context_window, 200 * 1024);
  EXPECT_NE(glm.seed, intern.seed);
}

TEST(HeadProfile, DeterministicPerHead) {
  const ModelConfig model = chatglm2_6b();
  const HeadProfile a = head_profile(model, 5, 7);
  const HeadProfile b = head_profile(model, 5, 7);
  EXPECT_DOUBLE_EQ(a.stripe_strength, b.stripe_strength);
  EXPECT_DOUBLE_EQ(a.window_decay_tokens, b.window_decay_tokens);
  const HeadProfile c = head_profile(model, 5, 8);
  EXPECT_NE(a.stripe_strength, c.stripe_strength);
}

TEST(HeadProfile, LayerZeroIsWeaker) {
  const ModelConfig model = chatglm2_6b();
  double l0 = 0.0, l8 = 0.0;
  for (Index h = 0; h < model.n_heads; ++h) {
    l0 += head_profile(model, 0, h).stripe_strength;
    l8 += head_profile(model, 8, h).stripe_strength;
  }
  EXPECT_LT(l0, 0.7 * l8);
}

TEST(HeadKinds, MixtureRoughlyMatchesDesign) {
  const ModelConfig model = chatglm2_6b();
  int dense = 0, retrieval = 0, standard = 0;
  for (Index l = 0; l < model.n_layers; ++l) {
    for (Index h = 0; h < model.n_heads; ++h) {
      switch (head_kind(model, l, h)) {
        case HeadKind::kDense: ++dense; break;
        case HeadKind::kRetrieval: ++retrieval; break;
        case HeadKind::kStandard: ++standard; break;
      }
    }
  }
  const int total = dense + retrieval + standard;
  EXPECT_EQ(total, 28 * 32);
  EXPECT_NEAR(static_cast<double>(dense) / total, 0.08, 0.04);
  EXPECT_NEAR(static_cast<double>(retrieval) / total, 0.22, 0.06);
}

TEST(Generator, ShapesAndDeterminism) {
  const ModelConfig model = chatglm2_6b();
  const ContentSpec content = plain_prompt(1, 128);
  const AttentionInput a = generate_attention(model, content, 3, 4);
  EXPECT_EQ(a.sq(), 128);
  EXPECT_EQ(a.sk(), 128);
  EXPECT_EQ(a.head_dim(), 128);
  const AttentionInput b = generate_attention(model, content, 3, 4);
  EXPECT_FLOAT_EQ(max_abs_diff(a.q, b.q), 0.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(a.k, b.k), 0.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(a.v, b.v), 0.0f);
}

TEST(Generator, ContentAwareness) {
  // Same head, different content seeds -> different K structure (Fig 2(d)).
  const ModelConfig model = chatglm2_6b();
  const AttentionInput a = generate_attention(model, plain_prompt(1, 128), 3, 4);
  const AttentionInput b = generate_attention(model, plain_prompt(2, 128), 3, 4);
  EXPECT_GT(max_abs_diff(a.k, b.k), 0.1f);
}

TEST(Generator, LocalWindowPattern) {
  // Diagonal-adjacent scores should exceed distant scores on a standard
  // head, on average.
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(3, 256), 8, 3);
  const auto rows = stride_rows(256, 0.2);
  double near = 0.0, far = 0.0;
  Index n_near = 0, n_far = 0;
  for_each_score_row(in, rows, [&](Index i, std::span<const float> p) {
    if (i < 64) return;
    for (Index j = i - 3; j <= i; ++j) {
      near += p[static_cast<std::size_t>(j)];
      ++n_near;
    }
    for (Index j = i / 2 - 2; j <= i / 2; ++j) {
      far += p[static_cast<std::size_t>(j)];
      ++n_far;
    }
  });
  EXPECT_GT(near / static_cast<double>(n_near), 2.0 * far / static_cast<double>(n_far));
}

TEST(Generator, CriticalSpanIsStripe) {
  const ModelConfig model = chatglm2_6b();
  ContentSpec content = plain_prompt(4, 256);
  content.critical_positions = {100};
  content.critical_span = 4;
  const auto heads = retrieval_heads(model, 1);
  const AttentionInput in = generate_attention(model, content, heads[0].first, heads[0].second);
  // Column 100 should collect far more mass than a random mid column.
  const auto rows = stride_rows(256, 0.25);
  const auto colsum = column_score_sum(in, rows);
  EXPECT_GT(colsum[100], 10.0f * colsum[90]);
}

TEST(Generator, SignatureVectorsAreUnitAndDistinct) {
  const auto a = signature_vector(64, 1, 10);
  const auto b = signature_vector(64, 1, 11);
  double na = 0.0, ab = 0.0;
  for (std::size_t t = 0; t < a.size(); ++t) {
    na += static_cast<double>(a[t]) * a[t];
    ab += static_cast<double>(a[t]) * b[t];
  }
  EXPECT_NEAR(na, 1.0, 1e-5);
  EXPECT_LT(std::fabs(ab), 0.5);
}

TEST(Generator, HeadSpecificSparsity) {
  // Dense-kind heads must show materially lower SD than retrieval heads
  // (Fig 2(c)).
  const ModelConfig model = chatglm2_6b();
  const ContentSpec content = plain_prompt(5, 512);
  const auto rows = stride_rows(512, 0.1);

  double dense_sd = -1.0, retrieval_sd = -1.0;
  for (Index l = 1; l < model.n_layers && (dense_sd < 0 || retrieval_sd < 0); ++l) {
    for (Index h = 0; h < model.n_heads && (dense_sd < 0 || retrieval_sd < 0); ++h) {
      const HeadKind kind = head_kind(model, l, h);
      if (kind == HeadKind::kDense && dense_sd < 0) {
        dense_sd = sd_oracle(generate_attention(model, content, l, h), 0.95, rows).sd;
      } else if (kind == HeadKind::kRetrieval && retrieval_sd < 0) {
        retrieval_sd = sd_oracle(generate_attention(model, content, l, h), 0.95, rows).sd;
      }
    }
  }
  ASSERT_GE(dense_sd, 0.0);
  ASSERT_GE(retrieval_sd, 0.0);
  EXPECT_GT(retrieval_sd, dense_sd + 0.15);
}

TEST(RetrievalHeads, AreRetrievalKindAndSpreadOverLayers) {
  const ModelConfig model = chatglm2_6b();
  const auto heads = retrieval_heads(model, 5);
  ASSERT_EQ(heads.size(), 5u);
  std::set<Index> layers;
  for (const auto& [l, h] : heads) {
    EXPECT_EQ(head_kind(model, l, h), HeadKind::kRetrieval);
    EXPECT_GT(l, 0);
    layers.insert(l);
  }
  EXPECT_EQ(layers.size(), 5u);
}

TEST(Workload, ProfilingSetMatchesPaperShape) {
  const auto requests = profiling_set(256, 1024);
  EXPECT_EQ(requests.size(), 22u);  // the paper's 22 requests
  EXPECT_EQ(requests.front().content.length, 256);
  EXPECT_EQ(requests.back().content.length, 1024);
  for (std::size_t r = 1; r < requests.size(); ++r) {
    EXPECT_GE(requests[r].content.length, requests[r - 1].content.length);
  }
}

TEST(Workload, ProfilingInputsMaterialize) {
  const ModelConfig model = chatglm2_6b();
  const auto requests = profiling_set(64, 128, 3);
  const auto inputs = profiling_inputs(model, requests, 4, 2);
  ASSERT_EQ(inputs.size(), 3u);
  EXPECT_EQ(inputs[0].sq(), 64);
  EXPECT_EQ(inputs[2].sq(), 128);
}

// Property: SD grows with sequence length on the same head (Fig 2(b),
// Table 5).
TEST(Generator, SparsityGrowsWithLength) {
  // Averaged over two heads to suppress per-head stripe-draw noise; small
  // tolerance since the trend, not strict per-sample monotonicity, is the
  // property (paper Table 5 reports averages over all heads).
  const ModelConfig model = chatglm2_6b();
  double prev = -1.0;
  for (Index s : {512, 2048, 8192}) {
    double sd = 0.0;
    for (Index head : {3, 9}) {
      const AttentionInput in = generate_attention(model, plain_prompt(9, s), 8, head);
      sd += sd_oracle(in, 0.95, stride_rows(s, 48.0 / s)).sd;
    }
    sd /= 2.0;
    EXPECT_GT(sd, prev - 0.005) << "S=" << s;
    prev = sd;
  }
}

}  // namespace
}  // namespace sattn
