// Tests for StructuredMask: membership, run compression, density math, and
// the convenience constructors.
#include <gtest/gtest.h>

#include "attention/masks.h"

namespace sattn {
namespace {

TEST(StructuredMask, WindowMembership) {
  StructuredMask m(8, 8);
  m.set_window(3);
  // Row 5: causal limit 5, window covers {3, 4, 5}.
  EXPECT_TRUE(m.contains(5, 5));
  EXPECT_TRUE(m.contains(5, 3));
  EXPECT_FALSE(m.contains(5, 2));
  EXPECT_FALSE(m.contains(5, 6));  // future
}

TEST(StructuredMask, CausalOverridesEverything) {
  StructuredMask m(4, 4);
  m.set_window(4);
  m.set_stripe_columns({3});
  EXPECT_FALSE(m.contains(0, 1));
  EXPECT_FALSE(m.contains(2, 3));
  EXPECT_TRUE(m.contains(3, 3));
}

TEST(StructuredMask, StripeColumnsSortedDeduped) {
  StructuredMask m(10, 10);
  m.set_stripe_columns({7, 2, 2, 5, -1, 100});
  const auto& cols = m.stripe_columns();
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 2);
  EXPECT_EQ(cols[1], 5);
  EXPECT_EQ(cols[2], 7);
}

TEST(StructuredMask, RunCompression) {
  StructuredMask m(10, 10);
  m.set_stripe_columns({1, 2, 3, 7, 9});
  const auto& runs = m.stripe_runs();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (ColumnRun{1, 4}));
  EXPECT_EQ(runs[1], (ColumnRun{7, 8}));
  EXPECT_EQ(runs[2], (ColumnRun{9, 10}));
}

TEST(StructuredMask, OutOfRangeQueriesAreFalse) {
  StructuredMask m(4, 4);
  m.set_window(4);
  EXPECT_FALSE(m.contains(-1, 0));
  EXPECT_FALSE(m.contains(0, -1));
  EXPECT_FALSE(m.contains(4, 0));
  EXPECT_FALSE(m.contains(0, 4));
}

TEST(StructuredMask, BlocksAreClippedAndChecked) {
  StructuredMask m(8, 8);
  m.add_block({2, 4, 0, 2});
  EXPECT_TRUE(m.contains(2, 1));
  EXPECT_TRUE(m.contains(3, 0));
  EXPECT_FALSE(m.contains(4, 0));
  EXPECT_FALSE(m.contains(1, 0));
  // Degenerate block is dropped.
  m.add_block({5, 5, 0, 8});
  EXPECT_EQ(m.blocks().size(), 1u);
}

TEST(StructuredMask, DensityMatchesDenseCount) {
  StructuredMask m(16, 16);
  m.set_window(3);
  m.set_stripe_columns({0, 5, 6});
  m.add_block({8, 12, 2, 5});
  const Matrix dense = m.to_dense();
  double kept = 0.0;
  for (float v : dense.flat()) kept += v;
  EXPECT_NEAR(m.density(), kept / causal_pairs(16, 16), 1e-9);
}

TEST(StructuredMask, FullWindowDensityIsOne) {
  StructuredMask m(12, 12);
  m.set_window(12);
  EXPECT_NEAR(m.density(), 1.0, 1e-12);
}

TEST(StructuredMask, EmptyMaskDensityIsZero) {
  StructuredMask m(6, 6);
  EXPECT_DOUBLE_EQ(m.density(), 0.0);
}

TEST(StructuredMask, DensityWithCrossLengths) {
  StructuredMask m(4, 10);
  m.set_window(2);
  m.set_stripe_columns({0});
  const Matrix dense = m.to_dense();
  double kept = 0.0;
  for (float v : dense.flat()) kept += v;
  EXPECT_NEAR(m.density(), kept / causal_pairs(4, 10), 1e-9);
}

TEST(WindowWidthFromRatio, CeilAndClamp) {
  EXPECT_EQ(window_width_from_ratio(100, 0.08), 8);
  EXPECT_EQ(window_width_from_ratio(100, 0.081), 9);   // ceil
  EXPECT_EQ(window_width_from_ratio(100, 0.0), 1);     // at least 1
  EXPECT_EQ(window_width_from_ratio(100, 2.0), 100);   // at most Sk
}

TEST(MakeWindowMask, UsesRatio) {
  const StructuredMask m = make_window_mask(50, 50, 0.1);
  EXPECT_EQ(m.window(), 5);
  EXPECT_TRUE(m.stripe_columns().empty());
}

TEST(MakeStreamingMask, SinksPlusWindow) {
  const StructuredMask m = make_streaming_mask(100, 100, 4, 10);
  EXPECT_EQ(m.window(), 10);
  ASSERT_EQ(m.stripe_columns().size(), 4u);
  EXPECT_TRUE(m.contains(50, 0));   // sink visible from anywhere
  EXPECT_TRUE(m.contains(50, 45));  // window
  EXPECT_FALSE(m.contains(50, 20)); // middle dropped
}

TEST(CausalPairs, CountsLowerTriangle) {
  EXPECT_DOUBLE_EQ(causal_pairs(3, 3), 6.0);   // 1+2+3
  EXPECT_DOUBLE_EQ(causal_pairs(2, 4), 7.0);   // 3+4
}

// Density must always lie in [0, 1] for random masks (property sweep).
class MaskDensityProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaskDensityProperty, DensityInUnitInterval) {
  const int seed = GetParam();
  const Index s = 20 + seed * 7;
  StructuredMask m(s, s);
  m.set_window(1 + seed % 5);
  std::vector<Index> cols;
  for (Index c = seed % 3; c < s; c += 3 + seed % 4) cols.push_back(c);
  m.set_stripe_columns(cols);
  m.add_block({seed % 5, seed % 5 + 4, 0, 3});
  EXPECT_GE(m.density(), 0.0);
  EXPECT_LE(m.density(), 1.0);
  const Matrix dense = m.to_dense();
  double kept = 0.0;
  for (float v : dense.flat()) kept += v;
  EXPECT_NEAR(m.density(), kept / causal_pairs(s, s), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskDensityProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace sattn
