// Tests for rotary positional embedding: norm preservation, relative
// position property, and the rope-scaling (position interpolation) variant.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "model/rope.h"

namespace sattn {
namespace {

double norm(std::span<const float> v) {
  double n = 0.0;
  for (float x : v) n += static_cast<double>(x) * x;
  return std::sqrt(n);
}

TEST(Rope, PositionZeroIsIdentity) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  auto w = v;
  apply_rope_row(w, 0);
  for (std::size_t t = 0; t < v.size(); ++t) EXPECT_FLOAT_EQ(w[t], v[t]);
}

TEST(Rope, PreservesNorm) {
  Rng rng(1);
  Matrix m(16, 64);
  rng.fill_normal(m);
  std::vector<double> before;
  for (Index r = 0; r < 16; ++r) before.push_back(norm(m.row(r)));
  apply_rope(m, 100);
  for (Index r = 0; r < 16; ++r) EXPECT_NEAR(norm(m.row(r)), before[static_cast<std::size_t>(r)], 1e-4);
}

TEST(Rope, RelativePositionProperty) {
  // <R(i)q, R(j)k> depends only on i - j.
  Rng rng(2);
  std::vector<float> q(32), k(32);
  for (float& x : q) x = static_cast<float>(rng.normal());
  for (float& x : k) x = static_cast<float>(rng.normal());

  auto score_at = [&](Index i, Index j) {
    auto qr = q;
    auto kr = k;
    apply_rope_row(qr, i);
    apply_rope_row(kr, j);
    return dot(qr, kr);
  };
  EXPECT_NEAR(score_at(10, 7), score_at(110, 107), 1e-4);
  EXPECT_NEAR(score_at(5, 0), score_at(905, 900), 1e-4);
}

TEST(Rope, ScalingCompressesPositions) {
  // With scaling = 2, position 2t behaves like position t unscaled.
  Rng rng(3);
  std::vector<float> v(16);
  for (float& x : v) x = static_cast<float>(rng.normal());
  auto a = v;
  auto b = v;
  apply_rope_row(a, 10, {10000.0, 2.0});
  apply_rope_row(b, 5, {10000.0, 1.0});
  for (std::size_t t = 0; t < v.size(); ++t) EXPECT_NEAR(a[t], b[t], 1e-5f);
}

TEST(Rope, MatrixOffsetMatchesRowCalls) {
  Rng rng(4);
  Matrix m(4, 8);
  rng.fill_normal(m);
  Matrix rows = m;
  apply_rope(m, 3);
  for (Index r = 0; r < 4; ++r) {
    auto row = rows.row(r);
    apply_rope_row(row, 3 + r);
    for (Index t = 0; t < 8; ++t) EXPECT_FLOAT_EQ(m(r, t), rows(r, t));
  }
}

TEST(Rope, LowFrequencyChannelsRotateSlowly) {
  std::vector<float> v(64, 1.0f);
  apply_rope_row(v, 1);
  // First pair rotates at angle 1 (fast); last pair rotates ~theta^-1 ~ 1e-4.
  EXPECT_LT(v[0], 0.99f);
  EXPECT_NEAR(v[62], 1.0f, 1e-3f);
}

}  // namespace
}  // namespace sattn
