// Tests for the task suites and the signature-retrieval scoring harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "attention/full_attention.h"
#include "baselines/streaming_llm.h"
#include "sample_attention/sample_attention.h"
#include "tasks/babilong.h"
#include "tasks/longbench.h"
#include "tasks/needle.h"

namespace sattn {
namespace {

EvalOptions fast_opts() {
  EvalOptions o;
  o.num_heads = 3;
  return o;
}

TEST(Needle, InstanceRespectsDepth) {
  const TaskInstance shallow = make_needle_instance(256, 0.0, 1);
  const TaskInstance deep = make_needle_instance(256, 1.0, 1);
  ASSERT_EQ(shallow.facts.size(), 1u);
  ASSERT_EQ(deep.facts.size(), 1u);
  EXPECT_EQ(shallow.facts[0], 0);
  EXPECT_GT(deep.facts[0], 200);
  EXPECT_LT(deep.facts[0], 256);
  EXPECT_EQ(shallow.mode, ScoreMode::kStrictFacts);
}

TEST(Needle, SuiteHasLengthTimesDepthInstances) {
  NeedleConfig cfg;
  cfg.lengths = {128, 256};
  cfg.depth_intervals = 4;
  const auto suite = make_needle_suite(cfg);
  EXPECT_EQ(suite.size(), 8u);
}

TEST(Needle, FullAttentionRecoversEverywhere) {
  const ModelConfig model = chatglm2_6b();
  NeedleConfig cfg;
  cfg.lengths = {384};
  cfg.depth_intervals = 5;
  const auto grid = needle_score_grid(model, FullAttention{}, cfg, fast_opts());
  ASSERT_EQ(grid.size(), 1u);
  double avg = 0.0;
  for (double v : grid[0]) avg += v;
  avg /= static_cast<double>(grid[0].size());
  EXPECT_GE(avg, 0.8) << "full attention should retrieve nearly all needles";
}

TEST(Needle, StreamingLLMFailsMidContext) {
  const ModelConfig model = chatglm2_6b();
  // Depth 0.5: needle far outside sinks and window.
  const TaskInstance inst = make_needle_instance(384, 0.5, 3);
  const double full_score = evaluate_instance(model, FullAttention{}, inst, fast_opts());
  const double stream_score = evaluate_instance(model, StreamingLLM{}, inst, fast_opts());
  EXPECT_EQ(full_score, 1.0);
  EXPECT_EQ(stream_score, 0.0);
}

TEST(Needle, SampleAttentionMatchesFullAttention) {
  const ModelConfig model = chatglm2_6b();
  NeedleConfig cfg;
  cfg.lengths = {384};
  cfg.depth_intervals = 5;
  const auto full = needle_score_grid(model, FullAttention{}, cfg, fast_opts());
  const auto sample = needle_score_grid(model, SampleAttention{}, cfg, fast_opts());
  double f = 0.0, s = 0.0;
  for (std::size_t d = 0; d < full[0].size(); ++d) {
    f += full[0][d];
    s += sample[0][d];
  }
  EXPECT_GE(s, 0.99 * f) << "SampleAttention must be near-lossless on needle";
}

TEST(LongBench, SuiteCoversAllFamilies) {
  LongBenchConfig cfg;
  cfg.lengths = {128};
  cfg.instances_per_family_per_length = 1;
  const auto suite = make_longbench_suite(cfg);
  ASSERT_EQ(suite.size(), longbench_families().size());
  for (std::size_t f = 0; f < suite.size(); ++f) {
    ASSERT_EQ(suite[f].size(), 1u);
    EXPECT_EQ(suite[f][0].family, longbench_families()[f]);
  }
}

TEST(LongBench, FamiliesHaveExpectedModes) {
  LongBenchConfig cfg;
  cfg.lengths = {128};
  cfg.instances_per_family_per_length = 1;
  const auto suite = make_longbench_suite(cfg);
  EXPECT_EQ(suite[0][0].mode, ScoreMode::kFractionalFacts);  // single_doc_qa
  EXPECT_EQ(suite[2][0].mode, ScoreMode::kFidelity);         // summarization
  EXPECT_EQ(suite[4][0].mode, ScoreMode::kStrictFacts);      // synthetic
  EXPECT_EQ(suite[1][0].facts.size(), 3u);                   // multi_doc_qa
  EXPECT_EQ(suite[3][0].facts.size(), 4u);                   // few_shot
  EXPECT_EQ(suite[5][0].facts.size(), 2u);                   // code_completion
}

TEST(LongBench, InstancesAreDeterministic) {
  LongBenchConfig cfg;
  cfg.lengths = {128};
  const auto a = make_longbench_family("single_doc_qa", cfg);
  const auto b = make_longbench_family("single_doc_qa", cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) EXPECT_EQ(a[t].facts, b[t].facts);
}

TEST(LongBench, CodeCompletionFactsAtSinkAndRecent) {
  LongBenchConfig cfg;
  cfg.lengths = {256};
  cfg.instances_per_family_per_length = 2;
  const auto fam = make_longbench_family("code_completion", cfg);
  for (const TaskInstance& inst : fam) {
    ASSERT_EQ(inst.facts.size(), 2u);
    EXPECT_LT(std::min(inst.facts[0], inst.facts[1]), 4);
    EXPECT_GT(std::max(inst.facts[0], inst.facts[1]), 256 - 24);
  }
}

TEST(BabiLong, SuiteShape) {
  BabiLongConfig cfg;
  cfg.lengths = {128, 256};
  cfg.instances_per_cell = 2;
  cfg.max_facts = 3;
  const auto suite = make_babilong_suite(cfg);
  EXPECT_EQ(suite.size(), 2u * 3u * 2u);
  for (const TaskInstance& inst : suite) {
    EXPECT_EQ(inst.mode, ScoreMode::kStrictFacts);
    EXPECT_GE(inst.facts.size(), 1u);
    EXPECT_LE(inst.facts.size(), 3u);
  }
}

TEST(BabiLong, FactsAreDistinct) {
  BabiLongConfig cfg;
  cfg.lengths = {512};
  cfg.instances_per_cell = 3;
  for (const TaskInstance& inst : make_babilong_suite(cfg)) {
    std::set<Index> uniq(inst.facts.begin(), inst.facts.end());
    EXPECT_EQ(uniq.size(), inst.facts.size());
  }
}

TEST(Scoring, FidelityOfExactMethodIsOne) {
  const ModelConfig model = chatglm2_6b();
  TaskInstance inst;
  inst.family = "summarization";
  inst.content = plain_prompt(11, 192);
  inst.mode = ScoreMode::kFidelity;
  const double score = evaluate_instance(model, FullAttention{}, inst, fast_opts());
  EXPECT_NEAR(score, 1.0, 1e-5);
}

TEST(Scoring, EmptyFactsScoreOne) {
  const ModelConfig model = chatglm2_6b();
  TaskInstance inst;
  inst.content = plain_prompt(12, 128);
  inst.mode = ScoreMode::kStrictFacts;
  EXPECT_DOUBLE_EQ(evaluate_instance(model, FullAttention{}, inst, fast_opts()), 1.0);
}

TEST(Scoring, SuiteMeanIsAverage) {
  const ModelConfig model = chatglm2_6b();
  std::vector<TaskInstance> suite = {make_needle_instance(192, 0.1, 13),
                                     make_needle_instance(192, 0.9, 14)};
  const double mean = evaluate_suite(model, FullAttention{}, suite, fast_opts());
  const double a = evaluate_instance(model, FullAttention{}, suite[0], fast_opts());
  const double b = evaluate_instance(model, FullAttention{}, suite[1], fast_opts());
  EXPECT_NEAR(mean, 0.5 * (a + b), 1e-9);
}

TEST(Scoring, FactRecoveredDetectsPlantedSignature) {
  ContentSpec content = plain_prompt(15, 64);
  const Index pos = 20;
  const auto sig = signature_vector(32, content.seed, pos);
  std::vector<float> out(32);
  for (std::size_t t = 0; t < 32; ++t) out[t] = 0.5f * sig[t];
  EXPECT_TRUE(fact_recovered(out, content, pos, EvalOptions{}));
  // Orthogonal output: not recovered.
  std::vector<float> zero(32, 0.01f);
  EXPECT_FALSE(fact_recovered(zero, content, pos, EvalOptions{}));
}

}  // namespace
}  // namespace sattn
