// Tests for Stage-2 score-based key-value filtering (Algorithm 1's sort +
// bucket prefix-sum + searchsorted, and the exact variant).
#include <gtest/gtest.h>

#include <algorithm>

#include "sample_attention/filtering.h"

namespace sattn {
namespace {

TEST(Filtering, ExactPicksMinimalPrefix) {
  // Mass: 0.5, 0.3, 0.1, 0.1 (already descending by column 0..3).
  std::vector<float> w = {0.5f, 0.3f, 0.1f, 0.1f};
  FilterConfig cfg;
  cfg.alpha = 0.75;
  cfg.mode = FilterMode::kExact;
  const FilterResult r = filter_kv_indices(w, cfg);
  ASSERT_EQ(r.kv_indices.size(), 2u);  // 0.5 + 0.3 >= 0.75
  EXPECT_EQ(r.kv_indices[0], 0);
  EXPECT_EQ(r.kv_indices[1], 1);
  EXPECT_NEAR(r.coverage, 0.8, 1e-6);
  EXPECT_NEAR(r.kv_ratio, 0.5, 1e-9);
}

TEST(Filtering, ExactUnsortedInput) {
  std::vector<float> w = {0.1f, 0.5f, 0.1f, 0.3f};
  FilterConfig cfg;
  cfg.alpha = 0.75;
  cfg.mode = FilterMode::kExact;
  const FilterResult r = filter_kv_indices(w, cfg);
  ASSERT_EQ(r.kv_indices.size(), 2u);
  EXPECT_EQ(r.kv_indices[0], 1);  // sorted ascending on output
  EXPECT_EQ(r.kv_indices[1], 3);
}

TEST(Filtering, AlphaOneKeepsEverythingExact) {
  std::vector<float> w = {0.25f, 0.25f, 0.25f, 0.25f};
  FilterConfig cfg;
  cfg.alpha = 1.0;
  cfg.mode = FilterMode::kExact;
  const FilterResult r = filter_kv_indices(w, cfg);
  EXPECT_EQ(r.kv_indices.size(), 4u);
  EXPECT_NEAR(r.coverage, 1.0, 1e-6);
}

TEST(Filtering, BucketedUsesAlgorithmOneCuts) {
  // 100 columns; one dominant column carries 99% of the mass. The smallest
  // bucket (1.25% -> ceil to 1 col? llround(1.25) = 1) should cover 0.95.
  std::vector<float> w(100, 0.0001f);
  w[42] = 1.0f;
  FilterConfig cfg;
  cfg.alpha = 0.95;
  cfg.mode = FilterMode::kBucketed;
  const FilterResult r = filter_kv_indices(w, cfg);
  EXPECT_LE(r.kv_indices.size(), 2u);
  EXPECT_EQ(r.kv_indices[0], 42);
  EXPECT_GE(r.coverage, 0.95);
}

TEST(Filtering, BucketedFallsBackToFullWhenMassIsFlat) {
  std::vector<float> w(64, 1.0f);
  FilterConfig cfg;
  cfg.alpha = 0.95;
  cfg.mode = FilterMode::kBucketed;
  const FilterResult r = filter_kv_indices(w, cfg);
  // Uniform mass: needs the last bucket (100%) to reach 95% coverage.
  EXPECT_EQ(r.kv_indices.size(), 64u);
}

TEST(Filtering, PreCoveredLowersTarget) {
  std::vector<float> w = {0.6f, 0.2f, 0.1f, 0.1f};
  FilterConfig cfg;
  cfg.alpha = 0.9;
  cfg.mode = FilterMode::kExact;
  cfg.pre_covered = 0.8;  // window already covers 80% of row mass
  // Effective residual target = (0.9 - 0.8) / 0.2 = 0.5 -> one column.
  const FilterResult r = filter_kv_indices(w, cfg);
  EXPECT_EQ(r.kv_indices.size(), 1u);
}

TEST(Filtering, PreCoveredAboveAlphaKeepsNothing) {
  std::vector<float> w = {0.5f, 0.5f};
  FilterConfig cfg;
  cfg.alpha = 0.9;
  cfg.pre_covered = 0.95;
  const FilterResult r = filter_kv_indices(w, cfg);
  EXPECT_TRUE(r.kv_indices.empty());
  EXPECT_DOUBLE_EQ(r.kv_ratio, 0.0);
}

TEST(Filtering, ZeroMassKeepsNothing) {
  std::vector<float> w(16, 0.0f);
  const FilterResult r = filter_kv_indices(w, FilterConfig{});
  EXPECT_TRUE(r.kv_indices.empty());
}

TEST(Filtering, EmptyInput) {
  const FilterResult r = filter_kv_indices({}, FilterConfig{});
  EXPECT_TRUE(r.kv_indices.empty());
  EXPECT_DOUBLE_EQ(r.kv_ratio, 0.0);
}

TEST(Filtering, IndicesAlwaysSortedAndUnique) {
  std::vector<float> w = {0.3f, 0.1f, 0.4f, 0.2f};
  FilterConfig cfg;
  cfg.alpha = 0.99;
  cfg.mode = FilterMode::kExact;
  const FilterResult r = filter_kv_indices(w, cfg);
  EXPECT_TRUE(std::is_sorted(r.kv_indices.begin(), r.kv_indices.end()));
  EXPECT_EQ(std::adjacent_find(r.kv_indices.begin(), r.kv_indices.end()), r.kv_indices.end());
}

// Property: exact mode is minimal — removing its least-weighted selected
// column drops coverage below the target; bucketed mode never selects fewer
// columns' coverage than the target (when reachable).
class FilterMinimality : public ::testing::TestWithParam<double> {};

TEST_P(FilterMinimality, ExactIsMinimalAndSufficient) {
  const double alpha = GetParam();
  std::vector<float> w;
  unsigned seed = 99;
  for (int i = 0; i < 200; ++i) {
    seed = seed * 1664525u + 1013904223u;
    w.push_back(static_cast<float>(seed % 1000) / 1000.0f + 0.001f);
  }
  // Make it skewed like real column statistics.
  for (int i = 0; i < 10; ++i) w[static_cast<std::size_t>(i * 17 % 200)] *= 50.0f;

  FilterConfig cfg;
  cfg.alpha = alpha;
  cfg.mode = FilterMode::kExact;
  const FilterResult r = filter_kv_indices(w, cfg);
  EXPECT_GE(r.coverage, alpha - 1e-9);

  // Coverage of one fewer (best) column must be below alpha.
  if (r.kv_indices.size() > 1) {
    double total = 0.0, kept = 0.0;
    for (float v : w) total += v;
    for (Index c : r.kv_indices) kept += w[static_cast<std::size_t>(c)];
    double min_selected = 1e30;
    for (Index c : r.kv_indices)
      min_selected = std::min(min_selected, static_cast<double>(w[static_cast<std::size_t>(c)]));
    EXPECT_LT((kept - min_selected) / total, alpha);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, FilterMinimality, ::testing::Values(0.5, 0.8, 0.9, 0.95, 0.99));

}  // namespace
}  // namespace sattn
