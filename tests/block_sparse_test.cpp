// Tests for the block-granular sparse kernel and layout.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/block_sparse.h"
#include "attention/flash_attention.h"
#include "attention/full_attention.h"
#include "attention/sparse_flash_attention.h"
#include "core/numerics.h"
#include "core/rng.h"
#include "metrics/recovery.h"
#include "model/workload.h"
#include "sample_attention/sample_attention.h"

namespace sattn {
namespace {

AttentionInput random_input(Index s, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(s, d);
  in.k.resize(s, d);
  in.v.resize(s, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

// Reference: softmax over exactly the block-rounded cell set.
Matrix block_reference(const AttentionInput& in, const BlockSparseLayout& layout) {
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  Matrix out(sq, d);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  for (Index i = 0; i < sq; ++i) {
    const Index lim = causal_limit(i, sq, sk);
    std::vector<float> logits;
    std::vector<Index> cols;
    for (Index kb : layout.active_kblocks(i / layout.block())) {
      const Index k_lo = kb * layout.block();
      const Index k_hi = std::min(sk, k_lo + layout.block());
      for (Index j = k_lo; j < std::min(k_hi, lim + 1); ++j) {
        cols.push_back(j);
        logits.push_back(scale * dot(in.q.row(i), in.k.row(j)));
      }
    }
    if (cols.empty()) continue;
    softmax_inplace(logits);
    auto oi = out.row(i);
    for (std::size_t t = 0; t < cols.size(); ++t) axpy(logits[t], in.v.row(cols[t]), oi);
  }
  return out;
}

StructuredMask sample_like_mask(Index s) {
  StructuredMask m(s, s);
  m.set_window(s / 12);
  std::vector<Index> cols = {0, 1, 2, 3};
  for (Index c = 7; c < s; c += 29) cols.push_back(c);
  m.set_stripe_columns(cols);
  return m;
}

TEST(BlockLayout, FullMaskActivatesLowerTriangle) {
  StructuredMask m(64, 64);
  m.set_window(64);
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(m, 16);
  EXPECT_EQ(layout.n_qblocks(), 4);
  for (Index qb = 0; qb < 4; ++qb) {
    EXPECT_EQ(static_cast<Index>(layout.active_kblocks(qb).size()), qb + 1);
  }
  EXPECT_NEAR(layout.density(), 1.0, 1e-12);
}

TEST(BlockLayout, DensityIsSupersetOfMask) {
  const StructuredMask m = sample_like_mask(192);
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(m, 32);
  EXPECT_GE(layout.density(), m.density() - 1e-12);
  EXPECT_GE(layout.rounding_overhead(m), 0.0);
  EXPECT_LE(layout.density(), 1.0);
}

TEST(BlockLayout, SmallerBlocksRoundLess) {
  const StructuredMask m = sample_like_mask(256);
  const double d8 = BlockSparseLayout::from_mask(m, 8).density();
  const double d64 = BlockSparseLayout::from_mask(m, 64).density();
  EXPECT_LE(d8, d64 + 1e-12);
}

TEST(BlockLayout, EveryMaskedCellIsCovered) {
  const StructuredMask m = sample_like_mask(96);
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(m, 16);
  for (Index i = 0; i < 96; ++i) {
    for (Index j = 0; j <= i; ++j) {
      if (!m.contains(i, j)) continue;
      const auto& act = layout.active_kblocks(i / 16);
      EXPECT_TRUE(std::binary_search(act.begin(), act.end(), j / 16))
          << "cell (" << i << "," << j << ") not covered";
    }
  }
}

TEST(BlockKernel, MatchesBlockReference) {
  const AttentionInput in = random_input(96, 8, 1);
  const StructuredMask m = sample_like_mask(96);
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(m, 16);
  Matrix out;
  block_sparse_attention(in, layout, out);
  EXPECT_LT(max_abs_diff(out, block_reference(in, layout)), 3e-5f);
}

TEST(BlockKernel, FullLayoutEqualsDense) {
  const AttentionInput in = random_input(80, 8, 2);
  StructuredMask m(80, 80);
  m.set_window(80);
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(m, 32);
  Matrix blocked, dense;
  block_sparse_attention(in, layout, blocked);
  flash_attention(in, dense);
  EXPECT_LT(max_abs_diff(blocked, dense), 3e-5f);
}

TEST(BlockKernel, CloseToRowRunKernelOnSamplePlans) {
  // Block rounding keeps a superset: the blocked output should be at least
  // as close to full attention as the row-run output, and both near-lossless.
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(3, 512), 8, 3);
  const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});

  Matrix exact, row_run, blocked;
  full_attention(in, exact);
  sparse_flash_attention(in, plan.mask, row_run);
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(plan.mask, 64);
  block_sparse_attention(in, layout, blocked);

  const double err_rows = recovery_stats(row_run, exact).rel_l1;
  const double err_blocks = recovery_stats(blocked, exact).rel_l1;
  EXPECT_LE(err_blocks, err_rows + 1e-6);
  EXPECT_LT(err_blocks, 0.1);
}

TEST(BlockKernel, NonDivisibleSizes) {
  const AttentionInput in = random_input(75, 8, 4);  // 75 % 16 != 0
  const StructuredMask m = sample_like_mask(75);
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(m, 16);
  Matrix out;
  block_sparse_attention(in, layout, out);
  EXPECT_LT(max_abs_diff(out, block_reference(in, layout)), 3e-5f);
}

TEST(BlockKernel, BlockOneEqualsRowRunKernel) {
  // Differential invariant: block size 1 rounds nothing, so the block
  // kernel must agree with the row-run kernel to float tolerance on any
  // structured mask.
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(9, 320), 8, 3);
  const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
  Matrix rows, blocks;
  sparse_flash_attention(in, plan.mask, rows);
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(plan.mask, 1);
  block_sparse_attention(in, layout, blocks);
  EXPECT_LT(max_abs_diff(rows, blocks), 3e-5f);
  EXPECT_NEAR(layout.rounding_overhead(plan.mask), 0.0, 1e-12);
}

class BlockSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlockSizeSweep, KernelAgreesAtAllBlockSizes) {
  const Index block = GetParam();
  const AttentionInput in = random_input(128, 8, 100 + static_cast<std::uint64_t>(block));
  const StructuredMask m = sample_like_mask(128);
  const BlockSparseLayout layout = BlockSparseLayout::from_mask(m, block);
  Matrix out;
  block_sparse_attention(in, layout, out);
  EXPECT_LT(max_abs_diff(out, block_reference(in, layout)), 3e-5f) << "block=" << block;
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeSweep, ::testing::Values(1, 8, 16, 33, 64, 128, 256));

}  // namespace
}  // namespace sattn
