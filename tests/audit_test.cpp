// Tests for the online attention-quality auditor (obs/audit.h): parity with
// the offline CRA metric at full sampling, nested threshold-hash selection,
// the decode-side retained-mass helper, the engine integration (audit billed
// to guard, measured_cra_low drift alert on a degraded mask), and the
// enabled-vs-disabled overhead bound the docs promise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "attention/masks.h"
#include "attention/score_utils.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "metrics/cra.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "runtime/decode.h"
#include "runtime/engine.h"
#include "sample_attention/guarded.h"

namespace sattn {
namespace {

using obs::AuditOptions;
using obs::AuditResult;
using obs::QualityAuditor;

AttentionInput random_input(Index sq, Index sk, Index d, std::uint64_t seed) {
  AttentionInput in;
  Rng rng(seed);
  in.q.resize(sq, d);
  in.k.resize(sk, d);
  in.v.resize(sk, d);
  for (Matrix* m : {&in.q, &in.k, &in.v}) {
    for (Index r = 0; r < m->rows(); ++r) {
      for (float& x : m->row(r)) x = static_cast<float>(rng.uniform() * 2.0 - 1.0);
    }
  }
  return in;
}

StructuredMask sparse_mask(Index sq, Index sk) {
  StructuredMask mask(sq, sk);
  mask.set_window(8);
  mask.set_stripe_columns({0, 3, 17, 29});
  return mask;
}

AuditOptions full_audit() {
  AuditOptions opts;
  opts.enabled = true;
  opts.sample_rate = 1.0;
  opts.row_budget = 0;  // no cap: audit every row
  return opts;
}

// ---------------------------------------------------------------------------
// Row selection: deterministic threshold hashing with nested sets
// ---------------------------------------------------------------------------

TEST(AuditSelectionTest, RateZeroSelectsNothingRateOneSelectsEverything) {
  AuditOptions off = full_audit();
  off.sample_rate = 0.0;
  const QualityAuditor none(off);
  const QualityAuditor all(full_audit());
  for (Index row = 0; row < 64; ++row) {
    EXPECT_FALSE(none.selects_row("req", row));
    EXPECT_TRUE(all.selects_row("req", row));
  }
}

TEST(AuditSelectionTest, SelectionIsDeterministicAndNestedAcrossRates) {
  AuditOptions lo_opts = full_audit();
  lo_opts.sample_rate = 0.1;
  AuditOptions hi_opts = full_audit();
  hi_opts.sample_rate = 0.5;
  const QualityAuditor lo(lo_opts), lo2(lo_opts), hi(hi_opts);
  int lo_picked = 0, hi_picked = 0;
  for (Index row = 0; row < 4096; ++row) {
    const bool in_lo = lo.selects_row("request-7", row);
    // Pure function of (seed, id, row): a second auditor agrees exactly.
    EXPECT_EQ(in_lo, lo2.selects_row("request-7", row));
    // Nested: every row audited at 0.1 is audited at 0.5.
    if (in_lo) EXPECT_TRUE(hi.selects_row("request-7", row));
    lo_picked += in_lo ? 1 : 0;
    hi_picked += hi.selects_row("request-7", row) ? 1 : 0;
  }
  // Unbiased-ish hit rates (loose: the hash is uniform, 4096 trials).
  EXPECT_NEAR(lo_picked / 4096.0, 0.1, 0.03);
  EXPECT_NEAR(hi_picked / 4096.0, 0.5, 0.05);
}

TEST(AuditSelectionTest, DifferentRequestsAuditDifferentRowSets) {
  AuditOptions opts = full_audit();
  opts.sample_rate = 0.2;
  const QualityAuditor aud(opts);
  int differ = 0;
  for (Index row = 0; row < 512; ++row) {
    if (aud.selects_row("req-a", row) != aud.selects_row("req-b", row)) ++differ;
  }
  EXPECT_GT(differ, 0);
}

// ---------------------------------------------------------------------------
// Parity with the offline metric (metrics/cra.h)
// ---------------------------------------------------------------------------

TEST(AuditParityTest, FullRateAuditEqualsOfflineCraExactly) {
  const Index s = 48;
  const AttentionInput in = random_input(s, s, 16, 0xc0ffee);
  const StructuredMask mask = sparse_mask(s, s);
  QualityAuditor aud(full_audit());
  const AuditResult res = aud.audit_chunk("parity", in, mask, /*q_lo=*/0, 0, 0, 0.95);
  ASSERT_EQ(res.rows, s);
  const std::vector<Index> rows = all_rows(s);
  // Same rows, same score path, same retained-mass accumulation: the online
  // estimate at rate 1.0 IS the offline Definition-2 value, bit for bit.
  EXPECT_DOUBLE_EQ(res.cra_min, cra(in, mask, rows));
  EXPECT_LT(res.cra_min, 1.0);  // the mask is genuinely sparse here
  EXPECT_GE(res.cra_mean, res.cra_min);
}

TEST(AuditParityTest, FullyDenseMaskAuditsToOne) {
  // Single-slot case is exact: softmax of one score is exactly 1.0.
  AttentionInput one = random_input(1, 1, 8, 1);
  StructuredMask full1(1, 1);
  full1.set_window(1);
  QualityAuditor aud(full_audit());
  const AuditResult r1 = aud.audit_chunk("dense1", one, full1, 0, 0, 0, 1.0);
  ASSERT_EQ(r1.rows, 1);
  EXPECT_DOUBLE_EQ(r1.cra_min, 1.0);

  // General case: a window covering the whole causal prefix retains all
  // mass up to float-sum rounding.
  const Index s = 32;
  const AttentionInput in = random_input(s, s, 16, 2);
  StructuredMask full(s, s);
  full.set_window(s);
  QualityAuditor aud2(full_audit());
  const AuditResult r = aud2.audit_chunk("dense", in, full, 0, 0, 0, 1.0);
  ASSERT_EQ(r.rows, s);
  EXPECT_NEAR(r.cra_min, 1.0, 1e-5);
}

TEST(AuditParityTest, MinEstimateIsMonotoneNonIncreasingInSampleRate) {
  const Index s = 64;
  const AttentionInput in = random_input(s, s, 16, 0xbeef);
  const StructuredMask mask = sparse_mask(s, s);
  const auto estimate = [&](double rate) {
    AuditOptions opts = full_audit();
    opts.sample_rate = rate;
    QualityAuditor aud(opts);
    return aud.audit_chunk("mono", in, mask, 0, 0, 0, 0.95).cra_min;
  };
  const double e10 = estimate(0.1);
  const double e50 = estimate(0.5);
  const double e100 = estimate(1.0);
  // Nested sets -> the min over a superset can only go down: the estimate
  // converges to the exact CRA from above as the rate rises.
  EXPECT_GE(e10, e50);
  EXPECT_GE(e50, e100);
  EXPECT_DOUBLE_EQ(e100, cra(in, mask, all_rows(s)));
}

TEST(AuditParityTest, RowBudgetCapsWorkAndKeepsEstimateAboveExact) {
  const Index s = 48;
  const AttentionInput in = random_input(s, s, 16, 0xabc);
  const StructuredMask mask = sparse_mask(s, s);
  AuditOptions capped = full_audit();
  capped.row_budget = 4;
  QualityAuditor aud(capped), aud2(capped);
  const AuditResult res = aud.audit_chunk("budget", in, mask, 0, 0, 0, 0.95);
  EXPECT_EQ(res.rows, 4);
  // Budgeted rows are the lowest-hash subset: deterministic, and a subset's
  // min is never below the full set's min.
  EXPECT_DOUBLE_EQ(res.cra_min, aud2.audit_chunk("budget", in, mask, 0, 0, 0, 0.95).cra_min);
  QualityAuditor uncapped(full_audit());
  EXPECT_GE(res.cra_min, uncapped.audit_chunk("budget", in, mask, 0, 0, 0, 0.95).cra_min);
}

// ---------------------------------------------------------------------------
// Scorecard accumulation
// ---------------------------------------------------------------------------

TEST(AuditScorecardTest, RecordDecodeFeedsHeadStatsAndTotals) {
  QualityAuditor aud(full_audit());
  aud.record_decode(0, 1, 0.98, 0.95, 0.001);
  aud.record_decode(0, 1, 0.90, 0.95, 0.001);
  aud.record_decode(2, 0, 0.80, 0.99, 0.002);
  const auto stats = aud.head_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].layer, 0);
  EXPECT_EQ(stats[0].head, 1);
  EXPECT_EQ(stats[0].rows, 2u);
  EXPECT_DOUBLE_EQ(stats[0].cra_min, 0.90);
  EXPECT_DOUBLE_EQ(stats[0].cra_mean, 0.94);
  EXPECT_DOUBLE_EQ(stats[0].predicted, 0.95);
  EXPECT_DOUBLE_EQ(stats[0].cra_gap, stats[0].predicted - stats[0].cra_p50);
  EXPECT_EQ(stats[1].layer, 2);
  // A positive gap flags overclaim: predicted 0.99 vs measured 0.80.
  EXPECT_NEAR(stats[1].cra_gap, 0.19, 1e-12);
  const auto totals = aud.totals();
  EXPECT_EQ(totals.rows, 3u);
  EXPECT_EQ(totals.chunks, 3u);
  EXPECT_DOUBLE_EQ(totals.cra_min, 0.80);
  EXPECT_NEAR(totals.overhead_seconds, 0.004, 1e-12);
}

// ---------------------------------------------------------------------------
// Decode-side retained mass (runtime/decode.h)
// ---------------------------------------------------------------------------

TEST(AuditDecodeTest, RetainedMassSumsWindowAndOutOfWindowStripes) {
  const std::vector<float> w = {0.1f, 0.2f, 0.3f, 0.4f};
  const std::vector<Index> stripe0 = {0};
  EXPECT_NEAR(audited_decode_retained_mass(w, stripe0, 2), 0.1 + 0.3 + 0.4, 1e-6);
  // A stripe inside the window is not double counted.
  const std::vector<Index> stripe3 = {3};
  EXPECT_NEAR(audited_decode_retained_mass(w, stripe3, 2), 0.3 + 0.4, 1e-6);
  // Duplicate stripe columns count once.
  const std::vector<Index> dup = {0, 0};
  EXPECT_NEAR(audited_decode_retained_mass(w, dup, 2), 0.1 + 0.3 + 0.4, 1e-6);
  // Window 0: stripes only.
  EXPECT_NEAR(audited_decode_retained_mass(w, stripe0, 0), 0.1, 1e-6);
  // Window covering everything: all mass.
  EXPECT_NEAR(audited_decode_retained_mass(w, {}, 8), 1.0, 1e-6);
}

TEST(AuditDecodeTest, EmptyWeightsAndClampEdgeCases) {
  EXPECT_DOUBLE_EQ(audited_decode_retained_mass({}, {}, 4), 1.0);
  // Float rounding can push a full sum past 1.0; the result is clamped.
  const std::vector<float> overfull = {0.7f, 0.7f};
  EXPECT_DOUBLE_EQ(audited_decode_retained_mass(overfull, {}, 2), 1.0);
}

// ---------------------------------------------------------------------------
// Engine integration (needs the obs registries clean + enabled)
// ---------------------------------------------------------------------------

class AuditObs : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
    ASSERT_TRUE(obs::set_enabled(true)) << "SATTN_TRACE=0 in the test environment";
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
  }

  static double counter_value(const std::string& name) {
    for (const obs::CounterValue& cv : obs::Collector::global().counters())
      if (cv.name == name) return cv.value;
    return 0.0;
  }

  static double gauge_value(const std::string& name) {
    for (const auto& [n, v] : obs::MetricsRegistry::global().snapshot().gauges)
      if (n == name) return v;
    return 0.0;
  }
};

EngineOptions audited_engine() {
  EngineOptions opts;
  opts.mode = EngineMode::kSampleAttention;
  opts.head_dim = 32;
  opts.chunk_tokens = 128;
  opts.max_batch = 4;
  opts.decode_tokens = 4;
  opts.run_label = "audit";
  opts.audit.enabled = true;
  opts.audit.sample_rate = 1.0;
  opts.audit.row_budget = 8;
  return opts;
}

TEST_F(AuditObs, DenseModeIgnoresAuditEvenWhenEnabled) {
  EngineOptions opts = audited_engine();
  opts.mode = EngineMode::kDense;
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace = {{"d0", 128, 0.0}};
  const EngineResult res = engine.run_trace(trace);
  EXPECT_EQ(res.completed.size(), 1u);
  EXPECT_EQ(engine.auditor(), nullptr);
  EXPECT_EQ(gauge_value("audit.rows_audited"), 0.0);
}

TEST_F(AuditObs, HealthyRunAuditsRowsBillsGuardAndKeepsTtftIdentity) {
  ServingEngine engine(audited_engine());
  std::vector<ServingRequest> trace;
  for (int i = 0; i < 6; ++i) trace.push_back({"h" + std::to_string(i), 512, 0.0});
  const EngineResult res = engine.run_trace(trace);
  ASSERT_EQ(res.completed.size(), 6u);

  ASSERT_NE(engine.auditor(), nullptr);
  const auto totals = engine.auditor()->totals();
  EXPECT_GT(totals.rows, 0u);
  EXPECT_GT(totals.overhead_seconds, 0.0);
  // Healthy planner at alpha 0.95: measured CRA stays near-lossless.
  EXPECT_GT(totals.cra_mean, 0.9);

  // finish() published the scorecard gauges.
  EXPECT_EQ(gauge_value("audit.rows_audited"), static_cast<double>(totals.rows));
  EXPECT_GT(gauge_value("audit.cra_mean"), 0.9);

  // Audit wall time bills to guard: the attribution identity survives with
  // every component non-negative (decode-side audits are deliberately NOT
  // billed — TTFT is already fixed at prefill completion by then).
  for (const EngineCompletion& c : res.completed) {
    EXPECT_NEAR(c.base.queue_seconds + c.base.compute_seconds + c.base.guard_seconds,
                c.base.ttft(), 1e-9)
        << c.base.request.id;
    EXPECT_GE(c.base.queue_seconds, -1e-9) << c.base.request.id;
    EXPECT_GE(c.base.guard_seconds, 0.0) << c.base.request.id;
  }
}

TEST_F(AuditObs, DegradedMaskRaisesMeasuredCraLowAlertFromGroundTruth) {
  // The planner's own bookkeeping cannot see this fault: shrinking the
  // deployed window to 1 after validation leaves predicted coverage and
  // retained-KV fraction intact, so only the shadow audit's measured CRA
  // (ground truth) catches the degradation.
  EngineOptions opts = audited_engine();
  opts.guard.plan_hook = [](SamplePlan& plan) { plan.mask.set_window(1); };
  opts.telemetry.enabled = true;
  opts.telemetry.interval_seconds = 1e6;  // final flush tick drives the monitor
  opts.telemetry.drift.min_samples = 2;
  opts.telemetry.drift.window_seconds = 60.0;
  opts.telemetry.drift.min_measured_cra = 0.90;

  ServingEngine engine(opts);
  std::vector<ServingRequest> trace;
  for (int i = 0; i < 6; ++i) trace.push_back({"g" + std::to_string(i), 512, 0.0});
  const EngineResult res = engine.run_trace(trace);
  ASSERT_EQ(res.completed.size(), 6u);

  ASSERT_NE(engine.auditor(), nullptr);
  const auto totals = engine.auditor()->totals();
  EXPECT_GT(totals.rows, 0u);
  // The drift monitor watches per-chunk CRA *minima* — the worst-row rolling
  // mean, not the per-row mean (which stays higher because most rows keep
  // their mass in the local window). The worst rows are measurably degraded.
  EXPECT_LT(totals.cra_min, 0.90);
  EXPECT_LT(gauge_value("audit.cra_min"), 0.90);

  obs::TelemetryPublisher* pub = engine.telemetry_publisher();
  ASSERT_NE(pub, nullptr);
  EXPECT_GT(pub->totals().audited_chunks, 0u);
  bool alert_active = false;
  for (const obs::AlertState& a : pub->alerts())
    if (a.name == "measured_cra_low") alert_active = a.active;
  EXPECT_TRUE(alert_active);
  EXPECT_GE(counter_value("alert.measured_cra_low"), 1.0);
}

// ---------------------------------------------------------------------------
// Overhead bound
// ---------------------------------------------------------------------------

bool built_with_sanitizers() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(AuditOverheadTest, DefaultRateAuditVsDisabledEngineRunUnderTwoPercent) {
  if (built_with_sanitizers()) {
    GTEST_SKIP() << "wall-time comparison is not meaningful under sanitizers";
  }
  // The cost contract from docs/OBSERVABILITY.md: shadow auditing at the
  // DEFAULT sample rate must cost < 2% wall time on a sample-mode engine
  // run, with a small absolute epsilon for scheduling noise. obs collection
  // is off in both arms so the comparison isolates the auditor itself.
  obs::set_enabled(false);
  const auto build_trace = [] {
    std::vector<ServingRequest> trace;
    for (int i = 0; i < 16; ++i) trace.push_back({"o" + std::to_string(i), 512, 0.0});
    return trace;
  };
  const auto run_once = [&](bool audit_on) {
    EngineOptions opts;
    opts.mode = EngineMode::kSampleAttention;
    opts.head_dim = 64;
    opts.chunk_tokens = 256;
    opts.max_batch = 8;
    opts.decode_tokens = 8;
    opts.run_label = audit_on ? "aud_on" : "aud_off";
    opts.audit.enabled = audit_on;  // default sample_rate / row_budget
    const std::vector<ServingRequest> trace = build_trace();
    const auto t0 = std::chrono::steady_clock::now();
    ServingEngine engine(opts);
    const EngineResult res = engine.run_trace(trace);
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    EXPECT_EQ(res.completed.size(), trace.size());
    return s;
  };

  run_once(false);  // warm both paths (thread pool spin-up, page faults)
  run_once(true);

  // Interleaved min-of-N with retry attempts, as in the telemetry overhead
  // guard: the bound is on the hooks, one clean window suffices.
  constexpr int kReps = 4;
  constexpr int kAttempts = 3;
  constexpr double kAbsEpsilonSeconds = 0.010;
  bool pass = false;
  double best_on = 0.0, best_off = 0.0;
  for (int attempt = 0; attempt < kAttempts && !pass; ++attempt) {
    best_on = std::numeric_limits<double>::infinity();
    best_off = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      best_off = std::min(best_off, run_once(false));
      best_on = std::min(best_on, run_once(true));
    }
    ASSERT_GT(best_off, 0.0);
    pass = best_on <= best_off * 1.02 + kAbsEpsilonSeconds;
  }
  EXPECT_TRUE(pass) << "audit-enabled " << best_on << "s vs disabled " << best_off
                    << "s exceeds the 2% + " << kAbsEpsilonSeconds << "s bound";
}

}  // namespace
}  // namespace sattn
