// Tests for the theory-side metrics: CRA (Def. 2), SD oracle (Def. 1),
// recovery stats, and the Theorem 1 error bound.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/full_attention.h"
#include "attention/score_utils.h"
#include "attention/sparse_flash_attention.h"
#include "core/rng.h"
#include "metrics/cra.h"
#include "metrics/recovery.h"
#include "metrics/sparsity.h"

namespace sattn {
namespace {

AttentionInput random_input(Index s, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(s, d);
  in.k.resize(s, d);
  in.v.resize(s, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

TEST(Cra, FullMaskGivesOne) {
  AttentionInput in = random_input(32, 8, 1);
  StructuredMask mask(32, 32);
  mask.set_window(32);
  const auto rows = all_rows(32);
  EXPECT_NEAR(cra(in, mask, rows), 1.0, 1e-5);
}

TEST(Cra, EmptyStripeMaskWithTinyWindow) {
  AttentionInput in = random_input(64, 8, 2);
  StructuredMask mask(64, 64);
  mask.set_window(1);  // only the diagonal
  const auto rows = all_rows(64);
  const double c = cra(in, mask, rows);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 0.8);
}

TEST(Cra, IsMinOverRows) {
  // Construct a case where one row retains much less than others: row 10's
  // mass concentrated on column 2 which the mask drops.
  AttentionInput in = random_input(16, 4, 3);
  for (Index t = 0; t < 4; ++t) in.k(2, t) = 20.0f * in.q(10, t);
  StructuredMask mask(16, 16);
  mask.set_window(2);
  const auto rows = all_rows(16);
  const double worst = cra(in, mask, rows);
  // Row 10 lost almost everything; CRA must reflect it.
  EXPECT_LT(worst, 0.3);
}

TEST(Cra, MatchesManualComputationOnDenseScores) {
  AttentionInput in = random_input(12, 4, 4);
  StructuredMask mask(12, 12);
  mask.set_window(3);
  mask.set_stripe_columns({0, 5});
  const Matrix p = full_attention_scores(in);
  double manual = 1.0;
  for (Index i = 0; i < 12; ++i) {
    double kept = 0.0;
    for (Index j = 0; j <= i; ++j) {
      if (mask.contains(i, j)) kept += p(i, j);
    }
    manual = std::min(manual, kept);
  }
  const auto rows = all_rows(12);
  EXPECT_NEAR(cra(in, mask, rows), manual, 1e-6);
}

TEST(Cra, ColumnsWindowHelperAgreesWithMask) {
  AttentionInput in = random_input(24, 4, 5);
  std::vector<Index> cols = {0, 1, 7};
  StructuredMask mask(24, 24);
  mask.set_window(4);
  mask.set_stripe_columns(cols);
  const auto rows = all_rows(24);
  EXPECT_NEAR(cra_columns_window(in, cols, 4, rows), cra(in, mask, rows), 1e-9);
}

TEST(SdOracle, RowMinKeptBasics) {
  std::vector<float> row = {0.5f, 0.3f, 0.15f, 0.05f};
  EXPECT_EQ(row_min_kept(row, 4, 0.5), 1);
  EXPECT_EQ(row_min_kept(row, 4, 0.79), 2);
  EXPECT_EQ(row_min_kept(row, 4, 0.81), 3);
  EXPECT_EQ(row_min_kept(row, 4, 1.0), 4);
  EXPECT_EQ(row_min_kept(row, 0, 0.9), 0);
}

TEST(SdOracle, UniformScoresHaveLowSd) {
  // Identical keys => uniform rows => need alpha fraction of each row.
  AttentionInput in;
  in.q.resize(64, 4, 1.0f);
  in.k.resize(64, 4, 1.0f);
  in.v.resize(64, 4, 1.0f);
  const auto rows = all_rows(64);
  const SparsityStats st = sd_oracle(in, 0.95, rows);
  EXPECT_LT(st.sd, 0.10);
  EXPECT_EQ(st.rows_measured, 64);
}

TEST(SdOracle, PeakedScoresHaveHighSd) {
  // Each query strongly matches exactly one key (the diagonal).
  AttentionInput in = random_input(64, 8, 6);
  in.k = in.q;
  for (Index i = 0; i < 64; ++i)
    for (Index t = 0; t < 8; ++t) in.k(i, t) *= 8.0f;
  const auto rows = all_rows(64);
  const SparsityStats st = sd_oracle(in, 0.95, rows);
  EXPECT_GT(st.sd, 0.5);
}

TEST(SdOracle, MonotoneInAlpha) {
  AttentionInput in = random_input(64, 8, 7);
  const auto rows = all_rows(64);
  const double sd_90 = sd_oracle(in, 0.90, rows).sd;
  const double sd_95 = sd_oracle(in, 0.95, rows).sd;
  const double sd_98 = sd_oracle(in, 0.98, rows).sd;
  EXPECT_GE(sd_90, sd_95);
  EXPECT_GE(sd_95, sd_98);
}

TEST(Recovery, ZeroForIdenticalMatrices) {
  Matrix a(4, 4, 1.5f);
  const RecoveryStats s = recovery_stats(a, a);
  EXPECT_DOUBLE_EQ(s.max_abs_err, 0.0);
  EXPECT_DOUBLE_EQ(s.rel_l1, 0.0);
}

TEST(Recovery, ComputesRowL1) {
  Matrix a(2, 2, 0.0f), b(2, 2, 0.0f);
  a(1, 0) = 0.3f;
  a(1, 1) = 0.2f;
  const RecoveryStats s = recovery_stats(a, b);
  EXPECT_NEAR(s.max_row_l1, 0.5, 1e-6);
  EXPECT_NEAR(s.max_abs_err, 0.3, 1e-6);
}

TEST(Recovery, ValueBoundIsMaxRowL1OfV) {
  Matrix v(3, 2);
  v(0, 0) = 1.0f; v(0, 1) = -2.0f;   // L1 = 3
  v(1, 0) = 0.5f; v(1, 1) = 0.5f;    // L1 = 1
  v(2, 0) = -4.0f; v(2, 1) = 0.0f;   // L1 = 4
  EXPECT_DOUBLE_EQ(value_l1_bound(v), 4.0);
}

TEST(Recovery, NearLosslessCriterion) {
  EXPECT_TRUE(near_lossless(99.1, 100.0));
  EXPECT_FALSE(near_lossless(98.9, 100.0));
  EXPECT_TRUE(near_lossless(0.0, 0.0));
}

// Theorem 1 (with softmax renormalization): the sparse output error is
// bounded by 2 * (1 - CRA) * R where R = max ||V_j||_1. Verified on random
// masks (property sweep).
class TheoremBound : public ::testing::TestWithParam<int> {};

TEST_P(TheoremBound, ErrorWithinCraBound) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  AttentionInput in = random_input(48, 8, seed + 50);
  StructuredMask mask(48, 48);
  mask.set_window(4 + static_cast<Index>(seed % 5));
  std::vector<Index> cols;
  for (Index c = seed % 7; c < 48; c += 5) cols.push_back(c);
  mask.set_stripe_columns(cols);

  Matrix exact, sparse;
  full_attention(in, exact);
  sparse_flash_attention(in, mask, sparse);
  const auto rows = all_rows(48);
  const double c = cra(in, mask, rows);
  const double r_bound = value_l1_bound(in.v);
  const RecoveryStats rec = recovery_stats(sparse, exact);
  EXPECT_LE(rec.max_row_l1, 2.0 * (1.0 - c) * r_bound + 1e-4)
      << "CRA=" << c << " R=" << r_bound;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremBound, ::testing::Range(0, 10));

}  // namespace
}  // namespace sattn
