// Tests for the scoring harness internals: fidelity gating, partial credit,
// the multi-method batch evaluator, and the umbrella header.
#include <gtest/gtest.h>

#include "sattn.h"  // umbrella header must compile standalone

namespace sattn {
namespace {

// An AttentionMethod returning garbage (orthogonal noise) — must be gated
// by the fidelity floor and earn no partial credit beyond ~0.
class GarbageAttention final : public AttentionMethod {
 public:
  std::string name() const override { return "Garbage"; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override {
    AttentionResult r;
    r.out.resize(in.sq(), in.head_dim());
    Rng rng(0xbad);
    rng.fill_normal(r.out, 1.0f);
    r.density = 0.0;
    return r;
  }
};

// A method that returns the exact output — must score identically to
// FullAttention through every path.
class ExactCopy final : public AttentionMethod {
 public:
  std::string name() const override { return "ExactCopy"; }

 protected:
  AttentionResult run_impl(const AttentionInput& in) const override {
    AttentionResult r;
    full_attention(in, r.out);
    return r;
  }
};

TaskInstance fact_instance(Index length, std::uint64_t seed) {
  TaskInstance inst;
  inst.family = "test";
  inst.content = plain_prompt(seed, length);
  inst.content.critical_positions = {length / 2};
  inst.content.critical_span = 4;
  inst.facts = inst.content.critical_positions;
  inst.mode = ScoreMode::kFractionalFacts;
  return inst;
}

TEST(Scoring, GarbageIsGatedToPartialCreditZero) {
  const ModelConfig model = chatglm2_6b();
  const TaskInstance inst = fact_instance(256, 1);
  EvalOptions opts;
  const double garbage = evaluate_instance(model, GarbageAttention{}, inst, opts);
  // Fidelity of noise output ~0 => gate blocks recovery AND partial credit
  // (which is fidelity-proportional) stays near zero.
  EXPECT_LT(garbage, 0.1);
}

TEST(Scoring, ExactCopyMatchesFullAttention) {
  const ModelConfig model = chatglm2_6b();
  const TaskInstance inst = fact_instance(256, 2);
  EvalOptions opts;
  EXPECT_DOUBLE_EQ(evaluate_instance(model, ExactCopy{}, inst, opts),
                   evaluate_instance(model, FullAttention{}, inst, opts));
}

TEST(Scoring, PartialCreditIsFidelityScaled) {
  // StreamingLLM on a mid-context fact: no recovery, but fidelity-scaled
  // partial credit in fractional mode — strictly between 0 and
  // partial_credit.
  const ModelConfig model = chatglm2_6b();
  const TaskInstance inst = fact_instance(512, 3);
  EvalOptions opts;
  const double score = evaluate_instance(model, StreamingLLM{}, inst, opts);
  EXPECT_GT(score, 0.0);
  EXPECT_LT(score, opts.partial_credit + 1e-9);
}

TEST(Scoring, StrictModeHasNoPartialCredit) {
  const ModelConfig model = chatglm2_6b();
  TaskInstance inst = fact_instance(512, 4);
  inst.mode = ScoreMode::kStrictFacts;
  EXPECT_DOUBLE_EQ(evaluate_instance(model, StreamingLLM{}, inst), 0.0);
}

TEST(Scoring, MultiEvaluatorMatchesSingleEvaluator) {
  const ModelConfig model = chatglm2_6b();
  std::vector<TaskInstance> suite = {fact_instance(256, 5), fact_instance(256, 6)};
  const FullAttention full;
  const StreamingLLM streaming;
  const std::vector<const AttentionMethod*> methods = {&full, &streaming};
  EvalOptions opts;
  const auto batch = evaluate_suite_multi(model, methods, suite, opts);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_NEAR(batch[0], evaluate_suite(model, full, suite, opts), 1e-12);
  EXPECT_NEAR(batch[1], evaluate_suite(model, streaming, suite, opts), 1e-12);
}

TEST(Scoring, ZeroPartialCreditDisablesFloor) {
  const ModelConfig model = chatglm2_6b();
  const TaskInstance inst = fact_instance(512, 7);
  EvalOptions opts;
  opts.partial_credit = 0.0;
  EXPECT_DOUBLE_EQ(evaluate_instance(model, StreamingLLM{}, inst, opts), 0.0);
}

TEST(Scoring, FidelityFloorGatesLuckyMethods) {
  // With the floor at 0 a garbage method could in principle register
  // accidental recoveries across many tries; with the default floor it
  // cannot register any.
  const ModelConfig model = chatglm2_6b();
  EvalOptions gated;
  EvalOptions open;
  open.fidelity_floor = 0.0;
  double gated_total = 0.0, open_total = 0.0;
  for (std::uint64_t r = 0; r < 4; ++r) {
    const TaskInstance inst = fact_instance(256, 100 + r);
    gated_total += evaluate_instance(model, GarbageAttention{}, inst, gated);
    open_total += evaluate_instance(model, GarbageAttention{}, inst, open);
  }
  EXPECT_LE(gated_total, open_total + 1e-12);
}

}  // namespace
}  // namespace sattn
