// Tests for the sparse flash kernel: it must equal a masked reference
// softmax exactly (softmax over the kept keys), reduce to the dense kernel
// under a full mask, and handle window/stripe/block overlap without double
// counting.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "attention/full_attention.h"
#include "attention/sparse_flash_attention.h"
#include "core/numerics.h"
#include "core/rng.h"

namespace sattn {
namespace {

AttentionInput random_input(Index s, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(s, d);
  in.k.resize(s, d);
  in.v.resize(s, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

// Reference masked attention: softmax over exactly the masked-in keys.
Matrix masked_reference(const AttentionInput& in, const StructuredMask& mask) {
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  Matrix out(sq, d);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  for (Index i = 0; i < sq; ++i) {
    std::vector<float> logits;
    std::vector<Index> cols;
    for (Index j = 0; j < sk; ++j) {
      if (mask.contains(i, j)) {
        cols.push_back(j);
        logits.push_back(scale * dot(in.q.row(i), in.k.row(j)));
      }
    }
    if (cols.empty()) continue;
    softmax_inplace(logits);
    auto oi = out.row(i);
    for (std::size_t t = 0; t < cols.size(); ++t) axpy(logits[t], in.v.row(cols[t]), oi);
  }
  return out;
}

TEST(SparseFlash, FullWindowEqualsDense) {
  AttentionInput in = random_input(48, 16, 1);
  StructuredMask mask(48, 48);
  mask.set_window(48);
  Matrix sparse, dense;
  sparse_flash_attention(in, mask, sparse);
  full_attention(in, dense);
  EXPECT_LT(max_abs_diff(sparse, dense), 2e-5f);
}

TEST(SparseFlash, MatchesMaskedReferenceWindowOnly) {
  AttentionInput in = random_input(40, 8, 2);
  StructuredMask mask(40, 40);
  mask.set_window(5);
  Matrix out;
  sparse_flash_attention(in, mask, out);
  EXPECT_LT(max_abs_diff(out, masked_reference(in, mask)), 2e-5f);
}

TEST(SparseFlash, MatchesMaskedReferenceWindowPlusStripes) {
  AttentionInput in = random_input(40, 8, 3);
  StructuredMask mask(40, 40);
  mask.set_window(4);
  mask.set_stripe_columns({0, 1, 7, 8, 9, 20, 33});
  Matrix out;
  sparse_flash_attention(in, mask, out);
  EXPECT_LT(max_abs_diff(out, masked_reference(in, mask)), 2e-5f);
}

TEST(SparseFlash, StripesOverlappingWindowNotDoubleCounted) {
  AttentionInput in = random_input(24, 8, 4);
  StructuredMask mask(24, 24);
  mask.set_window(6);
  // Stripes deliberately inside many rows' windows.
  mask.set_stripe_columns({10, 11, 12, 13, 14, 15, 16, 17, 18});
  Matrix out;
  sparse_flash_attention(in, mask, out);
  EXPECT_LT(max_abs_diff(out, masked_reference(in, mask)), 2e-5f);
}

TEST(SparseFlash, BlocksMatchReference) {
  AttentionInput in = random_input(32, 8, 5);
  StructuredMask mask(32, 32);
  mask.set_window(3);
  mask.set_stripe_columns({0, 16});
  mask.add_block({8, 16, 4, 12});
  mask.add_block({20, 28, 14, 20});
  Matrix out;
  sparse_flash_attention(in, mask, out);
  EXPECT_LT(max_abs_diff(out, masked_reference(in, mask)), 2e-5f);
}

TEST(SparseFlash, BlockOverlappingStripeAndWindowNotDoubleCounted) {
  AttentionInput in = random_input(24, 8, 6);
  StructuredMask mask(24, 24);
  mask.set_window(4);
  mask.set_stripe_columns({5, 6});
  mask.add_block({10, 20, 3, 9});  // overlaps stripes 5,6 and nothing else
  Matrix out;
  sparse_flash_attention(in, mask, out);
  EXPECT_LT(max_abs_diff(out, masked_reference(in, mask)), 2e-5f);
}

TEST(SparseFlash, CrossLengthOffset) {
  AttentionInput in;
  in.q.resize(8, 8);
  in.k.resize(20, 8);
  in.v.resize(20, 8);
  Rng rng(7);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  StructuredMask mask(8, 20);
  mask.set_window(4);
  mask.set_stripe_columns({0, 3});
  Matrix out;
  sparse_flash_attention(in, mask, out);
  EXPECT_LT(max_abs_diff(out, masked_reference(in, mask)), 2e-5f);
}

TEST(SparseFlash, WorkMatchesDensityTimesCausalPairs) {
  StructuredMask mask(64, 64);
  mask.set_window(8);
  mask.set_stripe_columns({0, 1, 30});
  EXPECT_NEAR(sparse_flash_work(mask), mask.density() * causal_pairs(64, 64), 1e-6);
}

TEST(MaskedAttention, AdapterReportsDensity) {
  AttentionInput in = random_input(32, 8, 8);
  MaskedAttention method("window", [](const AttentionInput& input) {
    return make_window_mask(input.sq(), input.sk(), 0.25);
  });
  const AttentionResult res = method.run(in);
  EXPECT_EQ(method.name(), "window");
  EXPECT_GT(res.density, 0.0);
  EXPECT_LT(res.density, 1.0);
  EXPECT_EQ(res.out.rows(), 32);
}

// Property sweep: kernel == masked reference on random masks.
class SparseKernelProperty : public ::testing::TestWithParam<int> {};

TEST_P(SparseKernelProperty, AgreesWithMaskedReference) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const Index s = 16 + static_cast<Index>(rng.uniform_index(48));
  AttentionInput in = random_input(s, 8, static_cast<std::uint64_t>(seed) + 1000);
  StructuredMask mask(s, s);
  mask.set_window(1 + rng.uniform_index(s / 2));
  std::vector<Index> cols;
  const Index n_cols = rng.uniform_index(s / 2);
  for (Index c = 0; c < n_cols; ++c) cols.push_back(rng.uniform_index(s));
  mask.set_stripe_columns(cols);
  if (seed % 2 == 0) {
    const Index q0 = rng.uniform_index(s / 2);
    const Index k0 = rng.uniform_index(s / 2);
    mask.add_block({q0, q0 + 4, k0, k0 + 6});
  }
  Matrix out;
  sparse_flash_attention(in, mask, out);
  EXPECT_LT(max_abs_diff(out, masked_reference(in, mask)), 3e-5f) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseKernelProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace sattn
