// Tests for the runtime alpha autotuner (Appendix A.6 extension).
#include <gtest/gtest.h>

#include "model/workload.h"
#include "sample_attention/adaptive.h"

namespace sattn {
namespace {

AttentionInput head_input(Index s, std::uint64_t seed) {
  const ModelConfig model = chatglm2_6b();
  return generate_attention(model, plain_prompt(seed, s), 8, 3);
}

TEST(Adaptive, EstimatedCraCombinesWindowAndStripes) {
  const AttentionInput in = head_input(512, 1);
  const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
  const double est = AdaptiveAlphaController::estimated_cra(plan);
  EXPECT_GT(est, 0.3);
  EXPECT_LE(est, 1.0);
}

TEST(Adaptive, AlphaStaysInBounds) {
  AdaptiveConfig cfg;
  cfg.alpha_min = 0.8;
  cfg.alpha_max = 0.97;
  cfg.base.alpha = 0.95;
  AdaptiveAlphaController ctrl(cfg);
  for (int r = 0; r < 30; ++r) {
    ctrl.run(head_input(256, 10 + static_cast<std::uint64_t>(r)));
    EXPECT_GE(ctrl.config().alpha, cfg.alpha_min);
    EXPECT_LE(ctrl.config().alpha, cfg.alpha_max);
  }
  EXPECT_EQ(ctrl.requests_seen(), 30);
}

TEST(Adaptive, RaisesAlphaWhenUnderTarget) {
  // Target coverage 0.999 is essentially unreachable: every request should
  // push alpha upward toward the max.
  AdaptiveConfig cfg;
  cfg.base.alpha = 0.80;
  cfg.target_cra = 0.999;
  cfg.band = 0.0005;
  cfg.step = 0.02;
  AdaptiveAlphaController ctrl(cfg);
  const double before = ctrl.config().alpha;
  for (int r = 0; r < 8; ++r) ctrl.run(head_input(256, 40 + static_cast<std::uint64_t>(r)));
  EXPECT_GT(ctrl.config().alpha, before);
}

TEST(Adaptive, LowersAlphaWhenOvershooting) {
  // Target 0.5 is far below what any plan achieves: alpha should fall.
  AdaptiveConfig cfg;
  cfg.base.alpha = 0.95;
  cfg.target_cra = 0.50;
  cfg.step = 0.02;
  AdaptiveAlphaController ctrl(cfg);
  const double before = ctrl.config().alpha;
  for (int r = 0; r < 8; ++r) ctrl.run(head_input(256, 60 + static_cast<std::uint64_t>(r)));
  EXPECT_LT(ctrl.config().alpha, before);
}

TEST(Adaptive, FeedbackWithoutRunAdvancesController) {
  AdaptiveAlphaController ctrl;
  const AttentionInput in = head_input(256, 80);
  const SamplePlan plan = plan_sample_attention(in, ctrl.config());
  ctrl.feedback(plan);
  EXPECT_EQ(ctrl.requests_seen(), 1);
}

TEST(Adaptive, ConvergesToStableBand) {
  // After a burn-in on a stationary workload the controller should stop
  // drifting: alpha changes between consecutive requests become small.
  AdaptiveConfig cfg;
  cfg.base.alpha = 0.80;
  cfg.target_cra = 0.90;
  cfg.band = 0.03;
  AdaptiveAlphaController ctrl(cfg);
  for (int r = 0; r < 25; ++r) ctrl.run(head_input(384, 100 + static_cast<std::uint64_t>(r % 5)));
  const double a1 = ctrl.config().alpha;
  for (int r = 0; r < 5; ++r) ctrl.run(head_input(384, 100 + static_cast<std::uint64_t>(r)));
  const double a2 = ctrl.config().alpha;
  EXPECT_LT(std::abs(a2 - a1), 3 * cfg.step + 1e-9);
}

}  // namespace
}  // namespace sattn
