// Tests for properties parsing and SampleAttentionConfig persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "io/config_io.h"

namespace sattn {
namespace {

TEST(Properties, SetGetTyped) {
  Properties p;
  p.set("alpha", 0.95);
  p.set("count", Index{42});
  p.set("flag", true);
  p.set("name", std::string("glm"));
  EXPECT_DOUBLE_EQ(*p.get_double("alpha"), 0.95);
  EXPECT_EQ(*p.get_index("count"), 42);
  EXPECT_TRUE(*p.get_bool("flag"));
  EXPECT_EQ(*p.get("name"), "glm");
  EXPECT_FALSE(p.get("missing").has_value());
}

TEST(Properties, ParseTolerantFormat) {
  Properties p;
  ASSERT_TRUE(p.parse("# comment\n\n  alpha =  0.9 \nname=chatglm\n"));
  EXPECT_DOUBLE_EQ(*p.get_double("alpha"), 0.9);
  EXPECT_EQ(*p.get("name"), "chatglm");
}

TEST(Properties, MalformedLineReported) {
  Properties p;
  EXPECT_FALSE(p.parse("good = 1\nthis line has no equals\n"));
  EXPECT_EQ(*p.get_index("good"), 1);  // prior keys still land
}

TEST(Properties, BadTypedValuesAreNullopt) {
  Properties p;
  p.set("x", std::string("not-a-number"));
  EXPECT_FALSE(p.get_double("x").has_value());
  EXPECT_FALSE(p.get_index("x").has_value());
  EXPECT_FALSE(p.get_bool("x").has_value());
}

TEST(Properties, SerializeParseRoundTrip) {
  Properties p;
  p.set("a", 1.5);
  p.set("b", std::string("text with spaces"));
  Properties q;
  ASSERT_TRUE(q.parse(p.serialize()));
  EXPECT_DOUBLE_EQ(*q.get_double("a"), 1.5);
  EXPECT_EQ(*q.get("b"), "text with spaces");
}

TEST(ConfigIo, RoundTripPreservesEveryField) {
  SampleAttentionConfig cfg;
  cfg.alpha = 0.87;
  cfg.row_ratio = 0.03;
  cfg.window_ratio = 0.05;
  cfg.sampling = SamplingPolicy::kRandom;
  cfg.filter = FilterMode::kExact;
  cfg.detect_diagonals = true;
  cfg.diag_min_mass = 0.07;
  cfg.seed = 123;

  const auto back = config_from_properties(to_properties(cfg));
  ASSERT_TRUE(back.has_value());
  EXPECT_DOUBLE_EQ(back->alpha, 0.87);
  EXPECT_DOUBLE_EQ(back->row_ratio, 0.03);
  EXPECT_DOUBLE_EQ(back->window_ratio, 0.05);
  EXPECT_EQ(back->sampling, SamplingPolicy::kRandom);
  EXPECT_EQ(back->filter, FilterMode::kExact);
  EXPECT_TRUE(back->detect_diagonals);
  EXPECT_DOUBLE_EQ(back->diag_min_mass, 0.07);
  EXPECT_EQ(back->seed, 123u);
}

TEST(ConfigIo, MissingKeysKeepDefaults) {
  Properties p;
  p.set("alpha", 0.9);
  const auto cfg = config_from_properties(p);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_DOUBLE_EQ(cfg->alpha, 0.9);
  EXPECT_DOUBLE_EQ(cfg->row_ratio, SampleAttentionConfig{}.row_ratio);
  EXPECT_EQ(cfg->sampling, SamplingPolicy::kStride);
}

TEST(ConfigIo, RejectsInvalidValues) {
  Properties bad_alpha;
  bad_alpha.set("alpha", 1.5);
  EXPECT_FALSE(config_from_properties(bad_alpha).has_value());

  Properties bad_enum;
  bad_enum.set("sampling", std::string("bogus"));
  EXPECT_FALSE(config_from_properties(bad_enum).has_value());

  Properties bad_number;
  bad_number.set("alpha", std::string("abc"));
  EXPECT_FALSE(config_from_properties(bad_number).has_value());
}

TEST(ConfigIo, FileRoundTrip) {
  SampleAttentionConfig cfg;
  cfg.alpha = 0.92;
  const std::string path = "/tmp/sattn_config_test.properties";
  ASSERT_TRUE(save_config(cfg, path));
  const auto loaded = load_config(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->alpha, 0.92);
  std::remove(path.c_str());
}

TEST(ConfigIo, LoadMissingFileFails) {
  EXPECT_FALSE(load_config("/tmp/definitely_missing_sattn.properties").has_value());
}

}  // namespace
}  // namespace sattn
