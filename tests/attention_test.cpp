// Tests for the exact attention kernels: reference full attention and the
// FlashAttention2-style tiled kernel must agree to float tolerance, respect
// causality, and reproduce hand-computable cases.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/flash_attention.h"
#include "attention/full_attention.h"
#include "core/numerics.h"
#include "core/rng.h"

namespace sattn {
namespace {

AttentionInput random_input(Index sq, Index sk, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(sq, d);
  in.k.resize(sk, d);
  in.v.resize(sk, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

TEST(FullAttention, SingleTokenIsIdentityOnV) {
  AttentionInput in = random_input(1, 1, 8, 1);
  Matrix out;
  full_attention(in, out);
  for (Index t = 0; t < 8; ++t) EXPECT_FLOAT_EQ(out(0, t), in.v(0, t));
}

TEST(FullAttention, UniformKeysAverageValues) {
  // All keys identical => uniform causal attention => row i averages
  // V[0..i].
  AttentionInput in;
  in.q.resize(3, 4, 1.0f);
  in.k.resize(3, 4, 1.0f);
  in.v.resize(3, 4);
  for (Index j = 0; j < 3; ++j)
    for (Index t = 0; t < 4; ++t) in.v(j, t) = static_cast<float>(j);
  Matrix out;
  full_attention(in, out);
  EXPECT_NEAR(out(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(out(1, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(out(2, 0), 1.0f, 1e-6f);
}

TEST(FullAttention, RespectsCausality) {
  // Make key 2 overwhelmingly attractive; rows 0 and 1 must not see it.
  AttentionInput in = random_input(3, 3, 4, 2);
  for (Index t = 0; t < 4; ++t) {
    in.k(2, t) = 100.0f * in.q(0, t);
    in.v(2, t) = 1e6f;
  }
  Matrix out;
  full_attention(in, out);
  EXPECT_LT(std::fabs(out(0, 0)), 100.0f);
  EXPECT_LT(std::fabs(out(1, 0)), 100.0f);
}

TEST(FullAttention, ScoresAreRowStochasticAndCausal) {
  AttentionInput in = random_input(5, 5, 8, 3);
  Matrix p = full_attention_scores(in);
  for (Index i = 0; i < 5; ++i) {
    double s = 0.0;
    for (Index j = 0; j < 5; ++j) {
      if (j > i) EXPECT_FLOAT_EQ(p(i, j), 0.0f);
      EXPECT_GE(p(i, j), 0.0f);
      s += p(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(FullAttention, CrossAttentionOffsetCausality) {
  // Sq < Sk: query i sees keys up to i + (Sk - Sq).
  AttentionInput in = random_input(2, 5, 4, 4);
  Matrix p = full_attention_scores(in);
  EXPECT_GT(p(0, 3), 0.0f);
  EXPECT_FLOAT_EQ(p(0, 4), 0.0f);
  double s = 0.0;
  for (Index j = 0; j < 5; ++j) s += p(1, j);
  EXPECT_NEAR(s, 1.0, 1e-5);
}

TEST(LogitsRow, MatchesManualDotProducts) {
  AttentionInput in = random_input(3, 3, 4, 5);
  std::vector<float> row(3);
  logits_row(in, 1, row);
  const float scale = 0.5f;  // 1/sqrt(4)
  EXPECT_NEAR(row[0], scale * dot(in.q.row(1), in.k.row(0)), 1e-5f);
  EXPECT_NEAR(row[1], scale * dot(in.q.row(1), in.k.row(1)), 1e-5f);
  EXPECT_TRUE(std::isinf(row[2]));
}

TEST(FlashAttention, MatchesReferenceSmall) {
  AttentionInput in = random_input(33, 33, 16, 6);
  Matrix ref, fl;
  full_attention(in, ref);
  flash_attention(in, fl);
  EXPECT_LT(max_abs_diff(ref, fl), 2e-5f);
}

TEST(FlashAttention, MatchesReferenceCrossLength) {
  AttentionInput in = random_input(20, 57, 8, 7);
  Matrix ref, fl;
  full_attention(in, ref);
  flash_attention(in, fl);
  EXPECT_LT(max_abs_diff(ref, fl), 2e-5f);
}

TEST(FlashAttention, MethodReportsFullDensity) {
  AttentionInput in = random_input(16, 16, 8, 8);
  FlashAttention method;
  const AttentionResult res = method.run(in);
  EXPECT_DOUBLE_EQ(res.density, 1.0);
  EXPECT_EQ(res.out.rows(), 16);
}

TEST(OnlineSoftmaxRow, MatchesDirectSoftmaxCombination) {
  // Absorb three (logit, value) pairs in an order that forces rescaling.
  std::vector<float> v1 = {1.0f, 0.0f}, v2 = {0.0f, 1.0f}, v3 = {1.0f, 1.0f};
  OnlineSoftmaxRow st(2);
  st.absorb(0.0f, v1);
  st.absorb(5.0f, v2);   // big jump: rescale path
  st.absorb(-2.0f, v3);
  std::vector<float> out(2);
  st.finalize(out);

  std::vector<float> logits = {0.0f, 5.0f, -2.0f};
  softmax_inplace(logits);
  EXPECT_NEAR(out[0], logits[0] * 1.0f + logits[2] * 1.0f, 1e-6f);
  EXPECT_NEAR(out[1], logits[1] * 1.0f + logits[2] * 1.0f, 1e-6f);
}

TEST(OnlineSoftmaxRow, EmptyFinalizesToZero) {
  OnlineSoftmaxRow st(3);
  std::vector<float> out(3, 9.0f);
  st.finalize(out);
  for (float x : out) EXPECT_FLOAT_EQ(x, 0.0f);
}

// Parameterized agreement sweep over (S, d, tile sizes).
struct FlashCase {
  Index s;
  Index d;
  Index tile_q;
  Index tile_k;
};

class FlashAgreement : public ::testing::TestWithParam<FlashCase> {};

TEST_P(FlashAgreement, MatchesReference) {
  const FlashCase c = GetParam();
  AttentionInput in = random_input(c.s, c.s, c.d, 100 + static_cast<std::uint64_t>(c.s));
  Matrix ref, fl;
  full_attention(in, ref);
  flash_attention(in, fl, {c.tile_q, c.tile_k});
  EXPECT_LT(max_abs_diff(ref, fl), 3e-5f) << "S=" << c.s << " d=" << c.d;
}

INSTANTIATE_TEST_SUITE_P(Shapes, FlashAgreement,
                         ::testing::Values(FlashCase{1, 4, 64, 64}, FlashCase{7, 4, 2, 3},
                                           FlashCase{64, 8, 16, 16}, FlashCase{65, 8, 64, 64},
                                           FlashCase{128, 32, 32, 128}, FlashCase{200, 16, 64, 7},
                                           FlashCase{256, 64, 128, 64}));

}  // namespace
}  // namespace sattn
