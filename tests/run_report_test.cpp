// Tests for the metrics registry (obs/metrics.h), the JSON document model
// (io/json.h), structured run reports (io/run_report.h), and the regression
// comparator (io/report_diff.h). The golden-file test pins the current
// schema version byte-for-byte (regenerate with SATTN_REGEN_GOLDEN=1 after
// an intentional schema change, and bump kRunReportVersion); the committed
// v1 golden additionally pins backward compatibility — old reports must
// keep parsing and round-tripping unchanged.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "io/json.h"
#include "io/report_diff.h"
#include "io/run_report.h"
#include "obs/metrics.h"
#include "obs/summary.h"
#include "obs/trace.h"

namespace sattn {
namespace {

using obs::percentile_nearest_rank;

class MetricsTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::enabled();
    obs::set_enabled(true);
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
  }
  void TearDown() override {
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
    obs::set_enabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

// --- percentile_nearest_rank -----------------------------------------------

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_EQ(percentile_nearest_rank({}, 0.50), 0.0);
  EXPECT_EQ(percentile_nearest_rank({}, 0.99), 0.0);
}

TEST(PercentileTest, SingleSampleIsEveryQuantile) {
  const std::vector<double> one{42.0};
  EXPECT_EQ(percentile_nearest_rank(one, 0.0), 42.0);
  EXPECT_EQ(percentile_nearest_rank(one, 0.50), 42.0);
  EXPECT_EQ(percentile_nearest_rank(one, 0.99), 42.0);
  EXPECT_EQ(percentile_nearest_rank(one, 1.0), 42.0);
}

TEST(PercentileTest, TwoSamplesSplitAtMedian) {
  const std::vector<double> two{10.0, 20.0};
  // rank ceil(0.5 * 2) = 1 -> lower sample; ceil(0.99 * 2) = 2 -> upper.
  EXPECT_EQ(percentile_nearest_rank(two, 0.50), 10.0);
  EXPECT_EQ(percentile_nearest_rank(two, 0.51), 20.0);
  EXPECT_EQ(percentile_nearest_rank(two, 0.99), 20.0);
}

TEST(PercentileTest, ReturnsObservedSamplesOnly) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_EQ(percentile_nearest_rank(v, 0.50), 50.0);
  EXPECT_EQ(percentile_nearest_rank(v, 0.90), 90.0);
  EXPECT_EQ(percentile_nearest_rank(v, 0.999), 100.0);
}

// --- summarize_spans / render_summary edge cases ---------------------------

TEST(SummaryTest, RenderSummaryStableForEmptyCollector) {
  EXPECT_EQ(obs::render_summary({}, {}), "(no spans or counters recorded)\n");
}

class SpanPercentileTest : public MetricsTestBase {};

TEST_F(SpanPercentileTest, OneAndTwoSampleSpansAreExact) {
  {
    obs::ScopedSpan s("solo");
  }
  auto stats = obs::summarize_spans(obs::Collector::global().spans());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_EQ(stats[0].p50_us, stats[0].p99_us);  // one sample: all quantiles equal

  {
    obs::ScopedSpan s("solo");
  }
  stats = obs::summarize_spans(obs::Collector::global().spans());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_LE(stats[0].p50_us, stats[0].p99_us);  // two samples: faster / slower
}

// --- MetricsRegistry -------------------------------------------------------

class MetricsRegistryTest : public MetricsTestBase {};

TEST_F(MetricsRegistryTest, GaugeIsLastWriteWins) {
  SATTN_GAUGE_SET("test.gauge", 1.0);
  SATTN_GAUGE_SET("test.gauge", 2.5);
  EXPECT_EQ(obs::MetricsRegistry::global().gauge("test.gauge").value(), 2.5);
}

TEST_F(MetricsRegistryTest, HistogramTracksExactCountSumMinMax) {
  auto& h = obs::MetricsRegistry::global().histogram("test.hist");
  for (double v : {3.0, 1.0, 2.0}) h.observe(v);
  const obs::HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 6.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST_F(MetricsRegistryTest, HistogramSingleObservationIsExact) {
  auto& h = obs::MetricsRegistry::global().histogram("test.single");
  h.observe(0.125);
  const obs::HistogramStats s = h.stats();
  // Clamping to the observed [min, max] makes one-sample quantiles exact.
  EXPECT_DOUBLE_EQ(s.p50, 0.125);
  EXPECT_DOUBLE_EQ(s.p90, 0.125);
  EXPECT_DOUBLE_EQ(s.p99, 0.125);
}

TEST_F(MetricsRegistryTest, HistogramPercentilesWithinBucketResolution) {
  auto& h = obs::MetricsRegistry::global().histogram("test.latency");
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const obs::HistogramStats s = h.stats();
  // Log buckets give ~9% relative resolution (2^(1/8) growth).
  EXPECT_NEAR(s.p50, 500.0, 0.10 * 500.0);
  EXPECT_NEAR(s.p90, 900.0, 0.10 * 900.0);
  EXPECT_NEAR(s.p99, 990.0, 0.10 * 990.0);
  EXPECT_EQ(s.count, 1000u);
}

TEST_F(MetricsRegistryTest, HistogramIgnoresNaN) {
  auto& h = obs::MetricsRegistry::global().histogram("test.nan");
  h.observe(std::nan(""));
  h.observe(1.0);
  EXPECT_EQ(h.stats().count, 1u);
}

TEST_F(MetricsRegistryTest, SeriesDecimatesToBoundedUniformSketch) {
  auto& s = obs::MetricsRegistry::global().series("test.series");
  const int n = 10000;
  for (int i = 0; i < n; ++i) s.append(static_cast<double>(i), static_cast<double>(i));
  const auto samples = s.samples();
  EXPECT_LE(samples.size(), obs::Series::kDefaultCapacity);
  EXPECT_GE(samples.size(), obs::Series::kDefaultCapacity / 4);  // not just the head
  // Decimation preserves coverage of the whole run, early and late.
  EXPECT_LT(samples.front().first, n / 100);
  EXPECT_GT(samples.back().first, n * 0.9);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].first, samples[i].first);  // still ordered
  }
}

TEST_F(MetricsRegistryTest, SnapshotIsSortedAndResetClears) {
  SATTN_GAUGE_SET("z.gauge", 1.0);
  SATTN_GAUGE_SET("a.gauge", 2.0);
  SATTN_HISTOGRAM("m.hist", 1.0);
  SATTN_SERIES("m.series", 0.0, 1.0);
  // reset() zeroes values but registered names persist for the process
  // lifetime, so assert on order and presence rather than exact counts.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_TRUE(std::is_sorted(snap.gauges.begin(), snap.gauges.end(),
                             [](const auto& a, const auto& b) { return a.first < b.first; }));
  const auto gauge_value = [&](const std::string& name) -> double {
    for (const auto& [n, v] : snap.gauges) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "gauge " << name << " not in snapshot";
    return -1.0;
  };
  EXPECT_EQ(gauge_value("a.gauge"), 2.0);
  EXPECT_EQ(gauge_value("z.gauge"), 1.0);
  ASSERT_GE(snap.histograms.size(), 1u);
  ASSERT_GE(snap.series.size(), 1u);

  obs::MetricsRegistry::global().reset();
  const obs::MetricsSnapshot after = obs::MetricsRegistry::global().snapshot();
  for (const auto& [name, v] : after.gauges) EXPECT_EQ(v, 0.0);
  for (const auto& [name, h] : after.histograms) EXPECT_EQ(h.count, 0u);
  for (const auto& [name, pts] : after.series) EXPECT_TRUE(pts.empty());
}

TEST_F(MetricsRegistryTest, RecordHeadQualitySetsConventionGauges) {
  obs::record_head_quality(4, 3, 0.21, 0.97);
  auto& reg = obs::MetricsRegistry::global();
  EXPECT_DOUBLE_EQ(reg.gauge("quality.L4H3.retained_kv_frac").value(), 0.21);
  EXPECT_DOUBLE_EQ(reg.gauge("quality.L4H3.cra").value(), 0.97);
}

TEST(MetricsDisabledTest, MacrosAreNoOpsWhenDisabled) {
  const bool was = obs::enabled();
  obs::set_enabled(false);
  obs::MetricsRegistry::global().reset();
  SATTN_GAUGE_SET("disabled.gauge", 9.0);
  SATTN_HISTOGRAM("disabled.hist", 9.0);
  obs::record_head_quality(1, 1, 0.5, 0.5);
  obs::set_enabled(was);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  for (const auto& [name, v] : snap.gauges) EXPECT_EQ(v, 0.0) << name;
  for (const auto& [name, h] : snap.histograms) EXPECT_EQ(h.count, 0u) << name;
  obs::MetricsRegistry::global().reset();
}

// --- JSON document model ---------------------------------------------------

TEST(JsonTest, ParsesScalarsAndNesting) {
  const auto doc = parse_json(R"({"a": [1, 2.5, true, null, "sA"], "b": {"c": -3}})");
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  const JsonValue& v = doc.value();
  EXPECT_EQ(v.get("a").size(), 5u);
  EXPECT_EQ(v.get("a").at(0).as_number(), 1.0);
  EXPECT_EQ(v.get("a").at(1).as_number(), 2.5);
  EXPECT_TRUE(v.get("a").at(2).as_bool());
  EXPECT_TRUE(v.get("a").at(3).is_null());
  EXPECT_EQ(v.get("a").at(4).as_string(), "sA");
  EXPECT_EQ(v.get("b").get("c").as_number(), -3.0);
  EXPECT_TRUE(v.get("missing").is_null());
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json("{").ok());
  EXPECT_FALSE(parse_json("[1,]").ok());
  EXPECT_FALSE(parse_json("{\"a\":1} trailing").ok());
  EXPECT_FALSE(parse_json("nul").ok());
}

TEST(JsonTest, StringEscapesRoundTrip) {
  JsonValue o = JsonValue::object();
  o.set("s", std::string("tab\t quote\" backslash\\ newline\n"));
  const std::string text = o.to_string(-1);
  const auto back = parse_json(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().get("s").as_string(), "tab\t quote\" backslash\\ newline\n");
}

TEST(JsonTest, NumbersSerializeShortestRoundTrip) {
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(-0.0), "0");
}

// --- run report ------------------------------------------------------------

RunReport fixture_report() {
  RunReport r;
  r.meta = {{"build_type", "Release"}, {"compiler", "test-cc 1.0"},
            {"created_by", "fixture"}, {"cxx_flags", "-O2"},
            {"git_rev", "deadbee"},    {"threads", "8"}};
  BenchReport b;
  b.name = "bench_fixture";
  obs::SpanStat span;
  span.path = "sattn/plan";
  span.name = "sattn/plan";
  span.depth = 0;
  span.count = 3;
  span.total_us = 300.0;
  span.mean_us = 100.0;
  span.p50_us = 90.0;
  span.p99_us = 130.0;
  b.latency.push_back(span);
  b.counters = {{"attn.score_evals", 1024.0},
                {"sched.requests_completed", 3.0},
                {"sched.requests_degraded", 1.0},
                {"sched.requests_enqueued", 4.0},
                {"sched.requests_shed", 1.0}};
  b.gauges = {{"breakdown.S1024.measured_overhead_share", 0.2},
              {"breakdown.S1024.stage1_us", 50.0},
              {"quality.L1H2.cra", 0.97},
              {"quality.L1H2.retained_kv_frac", 0.21}};
  obs::HistogramStats ttft;
  ttft.count = 2;
  ttft.sum = 3.0;
  ttft.min = 1.0;
  ttft.max = 2.0;
  ttft.p50 = 1.0;
  ttft.p90 = 2.0;
  ttft.p99 = 2.0;
  b.histograms = {{"sched.ttft_seconds", ttft}};
  b.series = {{"sched.queue_depth", {{0.0, 1.0}, {1.0, 3.0}}}};
  r.benches.push_back(std::move(b));
  return r;
}

TEST(RunReportTest, WriteParseRoundTripIsByteIdentical) {
  const RunReport fixture = fixture_report();
  const std::string text = run_report_json(fixture);
  const auto parsed = parse_run_report(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(run_report_json(parsed.value()), text);

  const RunReport& p = parsed.value();
  EXPECT_EQ(p.version, kRunReportVersion);
  ASSERT_EQ(p.benches.size(), 1u);
  const BenchReport& b = p.benches[0];
  EXPECT_EQ(b.name, "bench_fixture");
  ASSERT_EQ(b.latency.size(), 1u);
  EXPECT_EQ(b.latency[0].path, "sattn/plan");
  EXPECT_EQ(b.latency[0].count, 3u);
  EXPECT_DOUBLE_EQ(b.gauges.at("quality.L1H2.cra"), 0.97);
  EXPECT_EQ(b.histograms.at("sched.ttft_seconds").count, 2u);
  ASSERT_EQ(b.series.at("sched.queue_depth").size(), 2u);
  EXPECT_EQ(p.meta.at("git_rev"), "deadbee");
}

TEST(RunReportTest, DerivedSectionsFollowNamingConventions) {
  const std::string text = run_report_json(fixture_report());
  const auto doc = parse_json(text);
  ASSERT_TRUE(doc.ok());
  const JsonValue& b = doc.value().get("benches").at(0);
  // quality: per-head records from quality.L<l>H<h>.* gauges.
  ASSERT_EQ(b.get("quality").get("per_head").size(), 1u);
  const JsonValue& head = b.get("quality").get("per_head").at(0);
  EXPECT_EQ(head.get("layer").as_number(), 1.0);
  EXPECT_EQ(head.get("head").as_number(), 2.0);
  EXPECT_EQ(head.get("cra").as_number(), 0.97);
  EXPECT_EQ(head.get("retained_kv_frac").as_number(), 0.21);
  // breakdown: per-length records from breakdown.S<len>.* gauges.
  ASSERT_EQ(b.get("breakdown").size(), 1u);
  EXPECT_EQ(b.get("breakdown").at(0).get("seq_len").as_number(), 1024.0);
  // serving: present because sched.requests_enqueued > 0.
  EXPECT_EQ(b.get("serving").get("completed").as_number(), 3.0);
  EXPECT_EQ(b.get("serving").get("shed").as_number(), 1.0);
  EXPECT_EQ(b.get("serving").get("ttft").get("count").as_number(), 2.0);
}

TEST(RunReportTest, KvViewGroupsKvGaugesAndRoundTrips) {
  RunReport r = fixture_report();
  r.benches[0].gauges["kv.prefix_hit_rate"] = 0.96;
  r.benches[0].gauges["kv.prefix_ttft_reduction"] = 0.68;
  r.benches[0].gauges["kv.residency_page_ratio"] = 0.90;
  const std::string text = run_report_json(r);
  const auto doc = parse_json(text);
  ASSERT_TRUE(doc.ok());
  const JsonValue& b = doc.value().get("benches").at(0);
  EXPECT_EQ(b.get("kv").get("prefix_hit_rate").as_number(), 0.96);
  EXPECT_EQ(b.get("kv").get("prefix_ttft_reduction").as_number(), 0.68);
  EXPECT_EQ(b.get("kv").get("residency_page_ratio").as_number(), 0.90);
  // Derived view only: parsing keeps the raw gauges, so the round trip is
  // byte-identical like every other view.
  const auto parsed = parse_run_report(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(run_report_json(parsed.value()), text);
}

TEST(RunReportTest, EmptyDerivedSectionsAreOmitted) {
  RunReport r = fixture_report();
  r.benches[0].gauges.clear();
  r.benches[0].counters.clear();
  r.benches[0].histograms.clear();
  const auto doc = parse_json(run_report_json(r));
  ASSERT_TRUE(doc.ok());
  const JsonValue& b = doc.value().get("benches").at(0);
  EXPECT_TRUE(b.get("quality").is_null());
  EXPECT_TRUE(b.get("breakdown").is_null());
  EXPECT_TRUE(b.get("serving").is_null());
}

// v2 additions on top of the v1 fixture: a tagged TTFT histogram (exemplar
// ids) and per-request attribution gauges, which surface as the
// `per_request` derived view.
RunReport fixture_report_v2() {
  RunReport r = fixture_report();
  BenchReport& b = r.benches[0];
  obs::HistogramStats& ttft = b.histograms.at("sched.ttft_seconds");
  ttft.max_exemplar = "sa_fcfs/req-007";
  ttft.p99_exemplar = "sa_fcfs/req-007";
  b.gauges["request.sa_fcfs/req-007.queue_s"] = 1.0;
  b.gauges["request.sa_fcfs/req-007.compute_s"] = 0.8;
  b.gauges["request.sa_fcfs/req-007.guard_s"] = 0.2;
  b.gauges["request.sa_fcfs/req-007.ttft_s"] = 2.0;
  b.gauges["acct.flash.flops"] = 1.0e9;
  b.gauges["perf.model_error.max_rel"] = 0.003;
  return r;
}

TEST(RunReportTest, GoldenFilePinsSchemaV2) {
  const std::string path = std::string(SATTN_TEST_DATA_DIR) + "/golden/run_report_v2.json";
  const std::string text = run_report_json(fixture_report_v2());
  if (std::getenv("SATTN_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << text;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream got;
  got << in.rdbuf();
  // Byte-for-byte: any schema change must be intentional (bump
  // kRunReportVersion and regenerate with SATTN_REGEN_GOLDEN=1).
  EXPECT_EQ(got.str(), text);
}

TEST(RunReportTest, GoldenV1DocumentStillParsesAndRoundTrips) {
  const std::string path = std::string(SATTN_TEST_DATA_DIR) + "/golden/run_report_v1.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream got;
  got << in.rdbuf();
  const auto parsed = parse_run_report(got.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  // The original version is preserved, and because every v2 addition is
  // emitted only when its source metrics exist, rewriting a v1 document is
  // still byte-identical.
  EXPECT_EQ(parsed.value().version, 1);
  EXPECT_EQ(run_report_json(parsed.value()), got.str());
}

TEST(RunReportTest, HistogramExemplarsRoundTripAndOmitWhenEmpty) {
  const RunReport r = fixture_report_v2();
  const std::string text = run_report_json(r);
  const auto parsed = parse_run_report(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const obs::HistogramStats& ttft =
      parsed.value().benches[0].histograms.at("sched.ttft_seconds");
  EXPECT_EQ(ttft.max_exemplar, "sa_fcfs/req-007");
  EXPECT_EQ(ttft.p99_exemplar, "sa_fcfs/req-007");
  EXPECT_EQ(run_report_json(parsed.value()), text);

  // An untagged histogram (the v1 fixture) serializes without the exemplar
  // keys at all.
  const std::string v1_text = run_report_json(fixture_report());
  EXPECT_EQ(v1_text.find("max_exemplar"), std::string::npos);
  EXPECT_EQ(v1_text.find("p99_exemplar"), std::string::npos);
}

TEST(RunReportTest, PerRequestViewGroupsRequestGauges) {
  const auto doc = parse_json(run_report_json(fixture_report_v2()));
  ASSERT_TRUE(doc.ok());
  const JsonValue& b = doc.value().get("benches").at(0);
  ASSERT_EQ(b.get("per_request").size(), 1u);
  const JsonValue& rec = b.get("per_request").at(0);
  // The id keeps the run-label segment; the field is after the LAST dot.
  EXPECT_EQ(rec.get("id").as_string(), "sa_fcfs/req-007");
  EXPECT_EQ(rec.get("queue_s").as_number(), 1.0);
  EXPECT_EQ(rec.get("compute_s").as_number(), 0.8);
  EXPECT_EQ(rec.get("guard_s").as_number(), 0.2);
  EXPECT_EQ(rec.get("ttft_s").as_number(), 2.0);
  // acct.* / perf.* gauges are not per-request records.
  EXPECT_TRUE(b.get("per_request").at(0).get("flops").is_null());

  // The v1 fixture has no request.* gauges, so the view is omitted.
  const auto v1_doc = parse_json(run_report_json(fixture_report()));
  ASSERT_TRUE(v1_doc.ok());
  EXPECT_TRUE(v1_doc.value().get("benches").at(0).get("per_request").is_null());
}

TEST(RunReportTest, RejectsWrongSchemaAndNewerVersion) {
  EXPECT_FALSE(parse_run_report(R"({"schema": "other", "version": 1, "benches": []})").ok());
  const std::string newer = R"({"schema": "sattn.run_report", "version": 999, "benches": []})";
  const auto st = parse_run_report(newer);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(parse_run_report("not json at all").ok());
}

TEST(RunReportTest, CollectSnapshotsRegistryAndCollector) {
  const bool was = obs::enabled();
  obs::set_enabled(true);
  obs::Collector::global().reset();
  obs::MetricsRegistry::global().reset();
  {
    obs::ScopedSpan span("collect/span");
  }
  SATTN_COUNTER_ADD("collect.counter", 2.0);
  SATTN_GAUGE_SET("collect.gauge", 1.5);
  SATTN_HISTOGRAM("collect.hist", 0.5);
  const RunReport r = collect_run_report("bench_collect");
  obs::Collector::global().reset();
  obs::MetricsRegistry::global().reset();
  obs::set_enabled(was);

  ASSERT_EQ(r.benches.size(), 1u);
  EXPECT_EQ(r.benches[0].name, "bench_collect");
  EXPECT_EQ(r.meta.at("created_by"), "bench_collect");
  EXPECT_FALSE(r.meta.at("git_rev").empty());
  ASSERT_EQ(r.benches[0].latency.size(), 1u);
  EXPECT_EQ(r.benches[0].latency[0].name, "collect/span");
  EXPECT_DOUBLE_EQ(r.benches[0].counters.at("collect.counter"), 2.0);
  EXPECT_DOUBLE_EQ(r.benches[0].gauges.at("collect.gauge"), 1.5);
  EXPECT_EQ(r.benches[0].histograms.at("collect.hist").count, 1u);
}

TEST(RunReportTest, MergeConcatenatesAndRejectsDuplicates) {
  RunReport a = fixture_report();
  RunReport b = fixture_report();
  b.benches[0].name = "bench_other";
  const auto merged = merge_run_reports({a, b});
  ASSERT_TRUE(merged.ok()) << merged.status().to_string();
  EXPECT_EQ(merged.value().benches.size(), 2u);
  EXPECT_EQ(merged.value().meta.at("created_by"), "bench_all");
  EXPECT_NE(merged.value().find_bench("bench_other"), nullptr);
  EXPECT_EQ(merged.value().find_bench("absent"), nullptr);

  const auto dup = merge_run_reports({a, a});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
}

// --- report diff -----------------------------------------------------------

TEST(ReportDiffTest, QualityMetricNameConvention) {
  EXPECT_TRUE(is_quality_metric("quality.L1H2.cra"));
  EXPECT_TRUE(is_quality_metric("sattn.plan.coverage"));
  EXPECT_TRUE(is_quality_metric("recovery.score"));
  EXPECT_FALSE(is_quality_metric("breakdown.S1024.stage1_us"));
  EXPECT_FALSE(is_quality_metric("sched.ttft_seconds"));
}

TEST(ReportDiffTest, IdenticalReportsHaveNoRegression) {
  const RunReport r = fixture_report();
  const DiffResult d = diff_reports(r, r);
  EXPECT_FALSE(d.has_regression());
  EXPECT_EQ(d.regressions, 0u);
  EXPECT_EQ(d.improvements, 0u);
  EXPECT_GT(d.within_noise, 0u);
}

TEST(ReportDiffTest, LatencyRegressionBeyondThresholdFlagged) {
  const RunReport base = fixture_report();
  RunReport cand = fixture_report();
  // 3000us vs 100us baseline mean: way past 20% and the 500us noise floor.
  cand.benches[0].latency[0].mean_us = 3000.0;
  const DiffResult d = diff_reports(base, cand);
  ASSERT_TRUE(d.has_regression());
  bool found = false;
  for (const DiffEntry& e : d.entries) {
    if (e.metric == "latency:sattn/plan" && e.verdict == DiffVerdict::kRegression) found = true;
  }
  EXPECT_TRUE(found);
  // The same delta is ignored when latency checking is off.
  DiffOptions quality_only;
  quality_only.check_latency = false;
  EXPECT_FALSE(diff_reports(base, cand, quality_only).has_regression());
}

TEST(ReportDiffTest, SmallLatencyDeltasAreWithinNoise) {
  const RunReport base = fixture_report();
  RunReport cand = fixture_report();
  cand.benches[0].latency[0].mean_us = 115.0;  // +15%, and below the 500us floor
  EXPECT_FALSE(diff_reports(base, cand).has_regression());
}

TEST(ReportDiffTest, LatencyImprovementReported) {
  RunReport base = fixture_report();
  base.benches[0].latency[0].mean_us = 3000.0;
  RunReport cand = fixture_report();
  cand.benches[0].latency[0].mean_us = 1000.0;
  const DiffResult d = diff_reports(base, cand);
  EXPECT_FALSE(d.has_regression());
  EXPECT_GE(d.improvements, 1u);
}

TEST(ReportDiffTest, CraDropIsARegressionRegardlessOfLatency) {
  const RunReport base = fixture_report();
  RunReport cand = fixture_report();
  cand.benches[0].gauges["quality.L1H2.cra"] = 0.90;  // -0.07 > 0.005 tolerance
  DiffOptions opts;
  opts.check_latency = false;
  const DiffResult d = diff_reports(base, cand, opts);
  ASSERT_TRUE(d.has_regression());
  const std::string rendered = render_diff(d);
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos);
  EXPECT_NE(rendered.find("quality.L1H2.cra"), std::string::npos);
}

TEST(ReportDiffTest, MissingAndNewEntriesNeverGate) {
  const RunReport base = fixture_report();
  RunReport cand = fixture_report();
  cand.benches[0].gauges.erase("quality.L1H2.cra");          // missing in candidate
  cand.benches[0].gauges["quality.L9H9.cra"] = 0.5;          // new in candidate
  obs::SpanStat extra;
  extra.path = "new/span";
  extra.name = "new/span";
  extra.mean_us = 1e6;
  cand.benches[0].latency.push_back(extra);                  // new span, huge latency
  EXPECT_FALSE(diff_reports(base, cand).has_regression());
}

TEST(ReportDiffTest, ModelErrorMetricNameConvention) {
  EXPECT_TRUE(is_model_error_metric("perf.model_error.max_rel"));
  EXPECT_TRUE(is_model_error_metric("perf.model_error.flash.flops_rel"));
  EXPECT_FALSE(is_model_error_metric("acct.flash.flops"));
  EXPECT_FALSE(is_model_error_metric("quality.L1H2.cra"));
}

TEST(ReportDiffTest, ModelErrorGatesOnCandidateAbsoluteValue) {
  // The gate reads the CANDIDATE gauge against the absolute threshold —
  // even when the gauge is new (no baseline entry), a kernel drifting away
  // from the analytic cost model must fail the gate.
  const RunReport base = fixture_report();  // v1 fixture: no model_error gauges
  RunReport cand = fixture_report();
  cand.benches[0].gauges["perf.model_error.max_rel"] = 0.10;  // > default 0.05
  const DiffResult d = diff_reports(base, cand);
  ASSERT_TRUE(d.has_regression());
  bool found = false;
  for (const DiffEntry& e : d.entries) {
    if (e.metric == "gauge:perf.model_error.max_rel" && e.verdict == DiffVerdict::kRegression)
      found = true;
  }
  EXPECT_TRUE(found);

  // Under the threshold: within noise, and a baseline that already drifted
  // does not excuse the candidate.
  cand.benches[0].gauges["perf.model_error.max_rel"] = 0.003;
  EXPECT_FALSE(diff_reports(base, cand).has_regression());

  RunReport drifted_base = fixture_report();
  drifted_base.benches[0].gauges["perf.model_error.max_rel"] = 0.40;
  cand.benches[0].gauges["perf.model_error.max_rel"] = 0.10;
  EXPECT_TRUE(diff_reports(drifted_base, cand).has_regression());

  // The threshold is an option, for benches with known-coarser models.
  DiffOptions loose;
  loose.model_error_threshold = 0.5;
  EXPECT_FALSE(diff_reports(drifted_base, cand, loose).has_regression());
}

TEST(ReportDiffTest, ModelErrorV2FixtureIsSelfConsistent) {
  // The committed v2 golden fixture carries model-error gauges under the
  // default threshold: diffing it against itself must stay clean.
  const RunReport r = fixture_report_v2();
  EXPECT_FALSE(diff_reports(r, r).has_regression());
}

TEST(ReportDiffTest, PrefixTtftGatesAsCandidateMinFloor) {
  EXPECT_TRUE(is_prefix_ttft_metric("kv.prefix_ttft_reduction"));
  EXPECT_FALSE(is_prefix_ttft_metric("kv.prefix_hit_rate"));
  EXPECT_FALSE(is_prefix_ttft_metric("sched.ttft_seconds"));

  // Candidate below the floor regresses even when the baseline was lower
  // still — the warm-prefix TTFT cut is a contract, not a delta.
  const RunReport base = fixture_report();  // v1 fixture: no kv.* gauges
  RunReport cand = fixture_report();
  cand.benches[0].gauges["kv.prefix_ttft_reduction"] = 0.12;  // < default 0.30
  const DiffResult d = diff_reports(base, cand);
  ASSERT_TRUE(d.has_regression());
  bool found = false;
  for (const DiffEntry& e : d.entries) {
    if (e.metric == "gauge:kv.prefix_ttft_reduction" && e.verdict == DiffVerdict::kRegression)
      found = true;
  }
  EXPECT_TRUE(found);

  // At or above the floor: clean, regardless of the baseline value.
  cand.benches[0].gauges["kv.prefix_ttft_reduction"] = 0.65;
  EXPECT_FALSE(diff_reports(base, cand).has_regression());

  // Absent gauge (prefix bench not run): no gate at all.
  cand.benches[0].gauges.erase("kv.prefix_ttft_reduction");
  EXPECT_FALSE(diff_reports(base, cand).has_regression());

  // The floor is an option (tools/bench_diff --prefix-ttft-min).
  cand.benches[0].gauges["kv.prefix_ttft_reduction"] = 0.12;
  DiffOptions loose;
  loose.prefix_ttft_min = 0.10;
  EXPECT_FALSE(diff_reports(base, cand, loose).has_regression());
}

TEST(ReportDiffTest, MissingBenchDoesNotGate) {
  const RunReport base = fixture_report();
  RunReport cand;
  cand.meta = base.meta;
  const DiffResult d = diff_reports(base, cand);
  EXPECT_FALSE(d.has_regression());
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].verdict, DiffVerdict::kMissing);
}

}  // namespace
}  // namespace sattn
