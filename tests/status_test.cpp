// Tests for the error taxonomy: Status, StatusOr, and the SATTN_CHECK /
// SATTN_RETURN_IF_ERROR / SATTN_ASSIGN_OR_RETURN macros. The checks are
// always on — these tests behave identically in Release/NDEBUG builds.
#include <gtest/gtest.h>

#include <string>

#include "core/status.h"

namespace sattn {
namespace {

TEST(Status, OkIsDefaultAndCheap) {
  const Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_TRUE(ok.message().empty());
  EXPECT_EQ(Status{}, ok);
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s(StatusCode::kInvalidArgument, "bad alpha 1.7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha 1.7");
  EXPECT_NE(s.to_string().find("INVALID_ARGUMENT"), std::string::npos);
  EXPECT_NE(s.to_string().find("bad alpha 1.7"), std::string::npos);
}

TEST(Status, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kDataCorruption, StatusCode::kResourceExhausted,
        StatusCode::kDeadlineExceeded, StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_STRNE(status_code_name(code), "");
  }
}

Status checked_ratio(double r) {
  SATTN_CHECK(r > 0.0 && r <= 1.0, kInvalidArgument, "ratio must be in (0,1], got ", r);
  return Status::Ok();
}

TEST(Status, CheckMacroFormatsStreamedMessage) {
  EXPECT_TRUE(checked_ratio(0.5).ok());
  const Status bad = checked_ratio(2.5);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.message(), "ratio must be in (0,1], got 2.5");
}

TEST(Status, CheckSurvivesReleaseBuilds) {
  // Unlike assert, SATTN_CHECK is a plain branch: it must fire regardless
  // of NDEBUG. (This test is compiled in both configurations.)
  const Status s = checked_ratio(-1.0);
  EXPECT_FALSE(s.ok());
}

StatusOr<int> parse_positive(int x) {
  SATTN_CHECK(x > 0, kOutOfRange, "need positive, got ", x);
  return x * 10;
}

Status use_parsed(int x, int* out) {
  SATTN_ASSIGN_OR_RETURN(const int v, parse_positive(x));
  *out = v;
  return Status::Ok();
}

TEST(StatusOr, HoldsValueOrError) {
  const StatusOr<int> good = parse_positive(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 40);

  const StatusOr<int> bad = parse_positive(-2);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOr, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(use_parsed(7, &out).ok());
  EXPECT_EQ(out, 70);
  out = -1;
  const Status err = use_parsed(0, &out);
  EXPECT_EQ(err.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(out, -1);  // untouched on error
}

Status outer_returns_inner() {
  SATTN_RETURN_IF_ERROR(checked_ratio(9.0));
  return Status(StatusCode::kInternal, "should not get here");
}

TEST(Status, ReturnIfErrorShortCircuits) {
  EXPECT_EQ(outer_returns_inner().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOr, ImplicitFromStatusAndValue) {
  const auto make = [](bool fail) -> StatusOr<std::string> {
    if (fail) return Status(StatusCode::kUnavailable, "down");
    return std::string("up");
  };
  EXPECT_EQ(make(true).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(make(false).value(), "up");
}

}  // namespace
}  // namespace sattn
