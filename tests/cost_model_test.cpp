// Tests for the analytic A100 cost model: monotonicity, calibration against
// the paper's Table 4, and the SampleAttention cost decomposition.
#include <gtest/gtest.h>

#include "perf/cost_model.h"
#include "perf/latency_report.h"

namespace sattn {
namespace {

TEST(CostModel, AttentionFlopsQuadratic) {
  const ModelConfig m = chatglm2_6b();
  const double f1 = attention_flops(m, 1024);
  const double f2 = attention_flops(m, 2048);
  EXPECT_NEAR(f2 / f1, 4.0, 1e-9);
}

TEST(CostModel, FlashFasterThanSdpaAtLongLengths) {
  const ModelConfig m = chatglm2_6b();
  const GpuSpec gpu = a100_single();
  const Index s = 64 * 1024;
  EXPECT_LT(flash_attention_seconds(m, s, gpu), sdpa_seconds(m, s, gpu));
}

TEST(CostModel, SdpaBandwidthBoundGrowsQuadratically) {
  const ModelConfig m = chatglm2_6b();
  const GpuSpec gpu = a100_single();
  const double t1 = sdpa_seconds(m, 128 * 1024, gpu);
  const double t2 = sdpa_seconds(m, 256 * 1024, gpu);
  EXPECT_NEAR(t2 / t1, 4.0, 0.5);
}

TEST(CostModel, SampleAttentionBeatsFlashWhenSparse) {
  const ModelConfig m = chatglm2_6b();
  const GpuSpec gpu = a100_single();
  const Index s = 96 * 1024;
  const double flash = flash_attention_seconds(m, s, gpu);
  // Paper-like operating point at 96K: ~5% kept, 5% sampling overhead.
  const SampleAttentionCost c = sample_attention_seconds(m, s, gpu, 0.05, 0.05);
  EXPECT_LT(c.total_seconds, flash);
  EXPECT_GT(flash / c.total_seconds, 1.5);
  EXPECT_LT(flash / c.total_seconds, 12.0);
}

TEST(CostModel, SampleAttentionDenseIsSlowerThanFlash) {
  // With no sparsity the sampled pipeline must not beat the dense kernel.
  const ModelConfig m = chatglm2_6b();
  const GpuSpec gpu = a100_single();
  const Index s = 8 * 1024;
  const double flash = flash_attention_seconds(m, s, gpu);
  const SampleAttentionCost c = sample_attention_seconds(m, s, gpu, 1.0, 0.05);
  EXPECT_GT(c.total_seconds, flash);
}

TEST(CostModel, SamplingShareShrinksWithLength) {
  // Fig 5(c): the sampling proportion decreases as sequences lengthen
  // (because the kept density stays similar but Stage-2's O(Sk log Sk) and
  // fixed costs amortize; here density also falls with length).
  const ModelConfig m = chatglm2_6b();
  const GpuSpec gpu = a100_single();
  const double share_short =
      sample_attention_seconds(m, 8 * 1024, gpu, 0.30, 0.05).sampling_share;
  const double share_long =
      sample_attention_seconds(m, 96 * 1024, gpu, 0.10, 0.05).sampling_share;
  EXPECT_GT(share_short, share_long);
}

TEST(CostModel, Table4AttentionShareShape) {
  // Paper Table 4: attention share of TTFT grows from ~32% at 32K to ~88%
  // at 1M on the 8xA100 serving setup.
  const ModelConfig m = chatglm2_6b();
  const GpuSpec gpu = a100_cluster();
  const double share_32k = [&] {
    const double a = flash_attention_seconds(m, 32 * 1024, gpu);
    return a / ttft_seconds(m, 32 * 1024, gpu, a);
  }();
  const double share_1m = [&] {
    const double a = flash_attention_seconds(m, 1024 * 1024, gpu);
    return a / ttft_seconds(m, 1024 * 1024, gpu, a);
  }();
  // The paper reports 32.2% at 32K; the pure-roofline model (no chunked-
  // prefill fixed costs) lands lower but must stay clearly minority share.
  EXPECT_GT(share_32k, 0.08);
  EXPECT_LT(share_32k, 0.40);
  EXPECT_NEAR(share_1m, 0.877, 0.06);
}

TEST(CostModel, Table4AbsoluteScale) {
  // 1M attention on the paper's setup: 148.8s reported; the model should be
  // within ~35%.
  const ModelConfig m = chatglm2_6b();
  const GpuSpec gpu = a100_cluster();
  const double t = flash_attention_seconds(m, 1024 * 1024, gpu);
  EXPECT_GT(t, 0.65 * 148.8);
  EXPECT_LT(t, 1.35 * 148.8);
}

TEST(CostModel, ExtrapolationPerDoubling) {
  EXPECT_NEAR(extrapolate_kept_fraction(0.10, 1024, 2048), 0.08, 1e-9);
  EXPECT_NEAR(extrapolate_kept_fraction(0.10, 1024, 4096), 0.064, 1e-9);
  // Never below floor, never extrapolates downward for shorter targets.
  EXPECT_DOUBLE_EQ(extrapolate_kept_fraction(0.10, 1024, 512), 0.10);
  EXPECT_DOUBLE_EQ(extrapolate_kept_fraction(0.01, 1024, 1 << 30, 0.5, 0.005), 0.005);
}

TEST(CostModel, TtftDecomposition) {
  const ModelConfig m = chatglm2_6b();
  const GpuSpec gpu = a100_single();
  const double attn = 1.0;
  EXPECT_NEAR(ttft_seconds(m, 8192, gpu, attn),
              attn + linear_parts_seconds(m, 8192, gpu), 1e-12);
  EXPECT_GT(linear_parts_seconds(m, 16384, gpu), linear_parts_seconds(m, 8192, gpu));
}

TEST(CostModel, PeakMemoryChunkingHelps) {
  const ModelConfig m = chatglm2_6b();
  const Index s = 256 * 1024;
  const double unchunked = peak_prefill_bytes(m, s, 0, /*materialize_scores=*/true);
  const double chunked = peak_prefill_bytes(m, s, 4096, /*materialize_scores=*/true);
  EXPECT_LT(chunked, 0.25 * unchunked);
  // Flash-style (no score materialization) is dominated by the KV cache,
  // which chunking cannot reduce.
  const double flash_full = peak_prefill_bytes(m, s, 0, false);
  const double flash_chunked = peak_prefill_bytes(m, s, 4096, false);
  EXPECT_GT(flash_chunked, 0.4 * flash_full);
}

TEST(CostModel, PeakMemoryScalesWithSequence) {
  const ModelConfig m = chatglm2_6b();
  EXPECT_GT(peak_prefill_bytes(m, 128 * 1024, 4096, false),
            1.9 * peak_prefill_bytes(m, 64 * 1024, 4096, false));
}

TEST(TextTable, FormatsRows) {
  TextTable t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find('1'), std::string::npos);
}

TEST(Formatters, Basics) {
  EXPECT_EQ(fmt(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.957, 1), "95.7%");
  EXPECT_EQ(fmt_ms(0.0123, 1), "12.3");
  EXPECT_EQ(fmt_speedup(2.2, 2), "2.20x");
}

}  // namespace
}  // namespace sattn
