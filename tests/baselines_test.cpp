// Tests for the four comparison baselines: mask shapes, density accounting,
// determinism, and the qualitative behaviours that drive Table 2.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "attention/full_attention.h"
#include "baselines/bigbird.h"
#include "baselines/hash_sparse.h"
#include "baselines/hyper_attention.h"
#include "baselines/streaming_llm.h"
#include "core/rng.h"
#include "metrics/recovery.h"
#include "model/workload.h"

namespace sattn {
namespace {

AttentionInput structured_input(Index s, std::uint64_t seed) {
  const ModelConfig model = chatglm2_6b();
  return generate_attention(model, plain_prompt(seed, s), 8, 3);
}

TEST(BigBird, MaskHasWindowGlobalsAndBlocks) {
  const StructuredMask m = make_bigbird_mask(512, 512, BigBirdConfig{});
  EXPECT_EQ(m.window(), 41);  // ceil(0.08 * 512)
  EXPECT_GE(m.stripe_columns().size(), 40u);
  EXPECT_FALSE(m.blocks().empty());
  // Globals include sequence-start columns.
  EXPECT_EQ(m.stripe_columns().front(), 0);
}

TEST(BigBird, MaskIsDeterministicPerShape) {
  const StructuredMask a = make_bigbird_mask(256, 256, BigBirdConfig{});
  const StructuredMask b = make_bigbird_mask(256, 256, BigBirdConfig{});
  EXPECT_EQ(a.stripe_columns(), b.stripe_columns());
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  for (std::size_t t = 0; t < a.blocks().size(); ++t) EXPECT_EQ(a.blocks()[t], b.blocks()[t]);
}

TEST(BigBird, DensityIsSparse) {
  AttentionInput in = structured_input(512, 1);
  BigBird method;
  const AttentionResult res = method.run(in);
  EXPECT_GT(res.density, 0.05);
  EXPECT_LT(res.density, 0.5);
}

TEST(StreamingLLM, MaskKeepsSinksAndWindowOnly) {
  AttentionInput in = structured_input(512, 2);
  StreamingLLM method;
  const AttentionResult res = method.run(in);
  EXPECT_LT(res.density, 0.25);
  EXPECT_EQ(res.out.rows(), 512);
}

TEST(StreamingLLM, DropsMidContextInformation) {
  // A strongly attractive mid-context key must not influence late rows.
  const ModelConfig model = chatglm2_6b();
  ContentSpec content = plain_prompt(3, 512);
  content.critical_positions = {250};
  content.critical_span = 4;
  const auto heads = retrieval_heads(model, 1);
  const AttentionInput in = generate_attention(model, content, heads[0].first, heads[0].second);

  Matrix exact;
  full_attention(in, exact);
  StreamingLLM method;
  const AttentionResult res = method.run(in);

  // Full attention output at the last row carries the needle signature;
  // StreamingLLM's must not.
  const auto sig = signature_vector(in.head_dim(), content.seed, 250);
  double full_corr = 0.0, stream_corr = 0.0;
  for (Index t = 0; t < in.head_dim(); ++t) {
    full_corr += exact(511, t) * sig[static_cast<std::size_t>(t)];
    stream_corr += res.out(511, t) * sig[static_cast<std::size_t>(t)];
  }
  EXPECT_GT(full_corr, 0.1);
  EXPECT_LT(stream_corr, full_corr * 0.5);
}

TEST(HyperAttention, RunsAndReportsSparseDensity) {
  AttentionInput in = structured_input(512, 4);
  HyperAttention method;
  const AttentionResult res = method.run(in);
  EXPECT_GT(res.density, 0.0);
  EXPECT_LT(res.density, 0.6);
  EXPECT_GT(res.overhead_density, 0.0);
  EXPECT_EQ(res.out.rows(), 512);
}

TEST(HyperAttention, ScalesCapacityWithLength) {
  AttentionInput small = structured_input(256, 5);
  HyperAttentionConfig cfg;  // scale_with_length = true by default
  HyperAttention scaled(cfg);
  const double d_small = scaled.run(small).density;
  // With fixed absolute capacities the small sequence would be near-dense.
  cfg.scale_with_length = false;
  HyperAttention fixed(cfg);
  const double d_fixed = fixed.run(small).density;
  EXPECT_LT(d_small, d_fixed);
}

TEST(HyperAttention, DeterministicAcrossRuns) {
  AttentionInput in = structured_input(256, 6);
  HyperAttention method;
  const AttentionResult a = method.run(in);
  const AttentionResult b = method.run(in);
  EXPECT_FLOAT_EQ(max_abs_diff(a.out, b.out), 0.0f);
}

TEST(HashSparse, BucketsPartitionWork) {
  AttentionInput in = structured_input(512, 7);
  HashSparse method;
  const AttentionResult res = method.run(in);
  // ~1/16 density expected from 16 buckets, plus diagonal fallback.
  EXPECT_GT(res.density, 0.01);
  EXPECT_LT(res.density, 0.35);
}

TEST(HashSparse, NoEmptyRows) {
  AttentionInput in = structured_input(128, 8);
  HashSparse method;
  const AttentionResult res = method.run(in);
  for (Index i = 0; i < 128; ++i) {
    double norm = 0.0;
    for (float v : res.out.row(i)) norm += std::fabs(v);
    EXPECT_GT(norm, 0.0) << "row " << i << " got no attention";
  }
}

TEST(HashSparse, MoreBucketsSparser) {
  AttentionInput in = structured_input(256, 9);
  HashSparseConfig few, many;
  few.num_buckets = 4;
  many.num_buckets = 32;
  const double d_few = HashSparse(few).run(in).density;
  const double d_many = HashSparse(many).run(in).density;
  EXPECT_GT(d_few, d_many);
}

TEST(Baselines, AllProduceFiniteOutputs) {
  AttentionInput in = structured_input(200, 10);
  const BigBird bb;
  const StreamingLLM sl;
  const HyperAttention ha;
  const HashSparse hs;
  for (const AttentionMethod* m :
       std::initializer_list<const AttentionMethod*>{&bb, &sl, &ha, &hs}) {
    const AttentionResult res = m->run(in);
    for (float v : res.out.flat()) {
      EXPECT_TRUE(std::isfinite(v)) << m->name();
    }
  }
}

TEST(Baselines, AccuracyOrderingOnStructuredInput) {
  // Exact methods < SampleAttention-like coverage; StreamingLLM and the hash
  // methods should have clearly higher output error than BigBird on
  // structured content (they drop content-critical stripes).
  AttentionInput in = structured_input(512, 11);
  Matrix exact;
  full_attention(in, exact);
  const double err_bigbird = recovery_stats(BigBird().run(in).out, exact).rel_l1;
  const double err_hash = recovery_stats(HashSparse().run(in).out, exact).rel_l1;
  EXPECT_LT(err_bigbird, err_hash);
}

}  // namespace
}  // namespace sattn
