// Tests for the diagonal-band mask extension (Appendix A.6 future work):
// mask algebra, kernel correctness, generator support, and end-to-end
// detection by the SampleAttention planner.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/full_attention.h"
#include "attention/score_utils.h"
#include "attention/sparse_flash_attention.h"
#include "core/numerics.h"
#include "core/rng.h"
#include "metrics/cra.h"
#include "metrics/recovery.h"
#include "model/workload.h"
#include "sample_attention/sample_attention.h"

namespace sattn {
namespace {

AttentionInput random_input(Index s, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(s, d);
  in.k.resize(s, d);
  in.v.resize(s, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

Matrix masked_reference(const AttentionInput& in, const StructuredMask& mask) {
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  Matrix out(sq, d);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  for (Index i = 0; i < sq; ++i) {
    std::vector<float> logits;
    std::vector<Index> cols;
    for (Index j = 0; j < sk; ++j) {
      if (mask.contains(i, j)) {
        cols.push_back(j);
        logits.push_back(scale * dot(in.q.row(i), in.k.row(j)));
      }
    }
    if (cols.empty()) continue;
    softmax_inplace(logits);
    auto oi = out.row(i);
    for (std::size_t t = 0; t < cols.size(); ++t) axpy(logits[t], in.v.row(cols[t]), oi);
  }
  return out;
}

TEST(DiagonalBand, MembershipAtOffset) {
  StructuredMask m(32, 32);
  m.add_diagonal_band({8, 3});  // distances 8, 9, 10 from the causal limit
  EXPECT_TRUE(m.contains(20, 12));   // distance 8
  EXPECT_TRUE(m.contains(20, 10));   // distance 10
  EXPECT_FALSE(m.contains(20, 13));  // distance 7
  EXPECT_FALSE(m.contains(20, 9));   // distance 11
}

TEST(DiagonalBand, ZeroWidthOrNegativeOffsetIgnored) {
  StructuredMask m(16, 16);
  m.add_diagonal_band({4, 0});
  m.add_diagonal_band({-1, 3});
  EXPECT_TRUE(m.diagonal_bands().empty());
}

TEST(DiagonalBand, OverlappingBandsMerge) {
  StructuredMask m(64, 64);
  m.add_diagonal_band({4, 4});
  m.add_diagonal_band({6, 6});
  ASSERT_EQ(m.diagonal_bands().size(), 1u);
  EXPECT_EQ(m.diagonal_bands()[0].offset, 4);
  EXPECT_EQ(m.diagonal_bands()[0].width, 8);
}

TEST(DiagonalBand, BandRunsMergeWithWindow) {
  StructuredMask m(64, 64);
  m.set_window(4);
  m.add_diagonal_band({4, 4});  // adjacent to the window -> one run
  const auto runs = m.band_runs_for_row(40);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (ColumnRun{33, 41}));
}

TEST(DiagonalBand, DensityMatchesDense) {
  StructuredMask m(24, 24);
  m.set_window(2);
  m.add_diagonal_band({6, 3});
  m.set_stripe_columns({0, 10});
  const Matrix dense = m.to_dense();
  double kept = 0.0;
  for (float v : dense.flat()) kept += v;
  EXPECT_NEAR(m.density(), kept / causal_pairs(24, 24), 1e-9);
}

TEST(DiagonalBand, KernelMatchesMaskedReference) {
  AttentionInput in = random_input(48, 8, 1);
  StructuredMask m(48, 48);
  m.set_window(3);
  m.add_diagonal_band({10, 4});
  m.add_diagonal_band({20, 2});
  m.set_stripe_columns({0, 1, 15, 16, 30});
  Matrix out;
  sparse_flash_attention(in, m, out);
  EXPECT_LT(max_abs_diff(out, masked_reference(in, m)), 3e-5f);
}

TEST(DiagonalBand, StripeInsideBandNotDoubleCounted) {
  AttentionInput in = random_input(40, 8, 2);
  StructuredMask m(40, 40);
  m.set_window(2);
  m.add_diagonal_band({5, 10});
  // Stripes that fall inside the band for many rows.
  m.set_stripe_columns({10, 11, 12, 13, 20, 21});
  Matrix out;
  sparse_flash_attention(in, m, out);
  EXPECT_LT(max_abs_diff(out, masked_reference(in, m)), 3e-5f);
}

TEST(DiagonalBand, CraCountsBandMass) {
  AttentionInput in = random_input(32, 8, 3);
  StructuredMask narrow(32, 32), with_band(32, 32);
  narrow.set_window(2);
  with_band.set_window(2);
  with_band.add_diagonal_band({2, 30});  // effectively everything
  std::vector<Index> rows;
  for (Index i = 0; i < 32; ++i) rows.push_back(i);
  EXPECT_LT(cra(in, narrow, rows), cra(in, with_band, rows));
  EXPECT_NEAR(cra(in, with_band, rows), 1.0, 1e-5);
}

TEST(DiagonalGenerator, ProducesOffDiagonalBump) {
  // A head with a strong secondary diagonal: mass at distance ~offset must
  // clearly exceed mass at unrelated distances.
  HeadProfile prof;
  prof.diag_strength = 4.0;
  prof.diag_offset_frac = 0.25;
  prof.diag_decay_tokens = 30.0;
  prof.stripe_strength = 0.0;
  prof.num_content_stripes = 0;
  prof.sink_strength = 0.0;
  const ContentSpec content = plain_prompt(5, 512);
  const AttentionInput in = generate_head_input(content, prof, 128, 99);

  const SampleStats st = sample_column_weights(in, 0.1);
  const Index bw = st.distance_bucket_width;
  const auto bucket_of = [bw](Index dist) {
    return std::min<Index>(SampleStats::kDistanceBuckets - 1, dist / bw);
  };
  const double diag_mass = st.distance_hist[static_cast<std::size_t>(bucket_of(128))];
  const double far_mass = st.distance_hist[static_cast<std::size_t>(bucket_of(320))];
  EXPECT_GT(diag_mass, 2.0 * far_mass);
}

TEST(DiagonalDetection, PlannerAddsBandAndImprovesCra) {
  HeadProfile prof;
  prof.diag_strength = 4.5;
  prof.diag_offset_frac = 0.3;
  prof.diag_decay_tokens = 25.0;
  const ContentSpec content = plain_prompt(6, 768);
  const AttentionInput in = generate_head_input(content, prof, 128, 77);

  SampleAttentionConfig off, on;
  on.detect_diagonals = true;
  const SamplePlan plan_off = plan_sample_attention(in, off);
  const SamplePlan plan_on = plan_sample_attention(in, on);
  EXPECT_TRUE(plan_off.mask.diagonal_bands().empty());
  EXPECT_FALSE(plan_on.mask.diagonal_bands().empty())
      << "detector missed a strong diagonal structure";

  const auto rows = stride_rows(768, 0.1);
  EXPECT_GT(cra(in, plan_on.mask, rows), cra(in, plan_off.mask, rows) + 0.02);
}

TEST(DiagonalDetection, NoFalsePositiveOnStripeOnlyHead) {
  // A head without diagonal structure must not sprout bands beyond the
  // window-adjacent bucket.
  const ModelConfig model = chatglm2_6b();
  const AttentionInput in = generate_attention(model, plain_prompt(7, 512), 8, 3);
  SampleAttentionConfig cfg;
  cfg.detect_diagonals = true;
  const SamplePlan plan = plan_sample_attention(in, cfg);
  const Index window = plan.mask.window();
  for (const DiagonalBand& b : plan.mask.diagonal_bands()) {
    EXPECT_LE(b.offset, window + plan.stage1.distance_bucket_width)
        << "spurious far diagonal band at offset " << b.offset;
  }
}

TEST(DiagonalDetection, OutputErrorImprovesOnDiagonalHead) {
  HeadProfile prof;
  prof.diag_strength = 4.5;
  prof.diag_offset_frac = 0.3;
  prof.diag_decay_tokens = 25.0;
  const ContentSpec content = plain_prompt(8, 512);
  const AttentionInput in = generate_head_input(content, prof, 128, 55);
  Matrix exact;
  full_attention(in, exact);

  SampleAttentionConfig off, on;
  on.detect_diagonals = true;
  Matrix out_off, out_on;
  sample_attention(in, off, out_off);
  sample_attention(in, on, out_on);
  EXPECT_LT(recovery_stats(out_on, exact).rel_l1, recovery_stats(out_off, exact).rel_l1);
}

}  // namespace
}  // namespace sattn
