// Tests for the live telemetry plane (obs/telemetry.h): ring semantics, hub
// fan-in, rolling aggregators, quality-drift alerts, the publisher's NDJSON
// schema, and the engine integration — including the enabled-vs-disabled
// overhead bound the docs promise. The multi-thread tests double as the
// TSan targets wired into scripts/check_sanitizers.sh.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "runtime/engine.h"

namespace sattn {
namespace {

using obs::TelemetryEvent;
using obs::TelemetryEventKind;

TelemetryEvent make_event(TelemetryEventKind kind, double t, float value = 0.0f,
                          std::uint32_t aux = 0, std::string_view id = "r0") {
  TelemetryEvent ev;
  ev.kind = kind;
  ev.t = t;
  ev.value = value;
  ev.aux = aux;
  ev.set_id(id);
  return ev;
}

// ---------------------------------------------------------------------------
// TelemetryRing
// ---------------------------------------------------------------------------

TEST(TelemetryRingTest, CapacityRoundsUpToPowerOfTwoWithMinimumEight) {
  EXPECT_EQ(obs::TelemetryRing(0).capacity(), 8u);
  EXPECT_EQ(obs::TelemetryRing(5).capacity(), 8u);
  EXPECT_EQ(obs::TelemetryRing(9).capacity(), 16u);
  EXPECT_EQ(obs::TelemetryRing(4096).capacity(), 4096u);
}

TEST(TelemetryRingTest, DrainPreservesPushOrderAcrossWraparound) {
  obs::TelemetryRing ring(8);
  std::vector<TelemetryEvent> out;
  // Two fill/drain rounds so indexes wrap past the capacity.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(ring.try_push(
          make_event(TelemetryEventKind::kSubmit, round * 10.0 + i)));
    }
    out.clear();
    EXPECT_EQ(ring.drain(out), 6u);
    ASSERT_EQ(out.size(), 6u);
    for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(out[i].t, round * 10.0 + i);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TelemetryRingTest, FullRingDropsNewestAndCountsInsteadOfBlocking) {
  obs::TelemetryRing ring(8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_push(make_event(TelemetryEventKind::kSubmit, i)));
  }
  EXPECT_FALSE(ring.try_push(make_event(TelemetryEventKind::kSubmit, 99.0)));
  EXPECT_FALSE(ring.try_push(make_event(TelemetryEventKind::kSubmit, 100.0)));
  EXPECT_EQ(ring.dropped(), 2u);

  // The 8 oldest events survive untouched; the overflow was dropped-newest.
  std::vector<TelemetryEvent> out;
  EXPECT_EQ(ring.drain(out), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)].t, i);
  // Space freed: pushes succeed again.
  EXPECT_TRUE(ring.try_push(make_event(TelemetryEventKind::kSubmit, 7.0)));
}

TEST(TelemetryRingTest, EventIdRoundTripsAndTruncatesToSlotSize) {
  TelemetryEvent ev;
  ev.set_id("req-42");
  EXPECT_EQ(ev.id_view(), "req-42");
  const std::string long_id(64, 'x');
  ev.set_id(long_id);
  EXPECT_EQ(ev.id_view().size(), sizeof(ev.id) - 1);
  EXPECT_EQ(ev.id_view(), std::string(sizeof(ev.id) - 1, 'x'));
}

// ---------------------------------------------------------------------------
// TelemetryHub
// ---------------------------------------------------------------------------

TEST(TelemetryHubTest, ConcurrentProducersAllEventsDrainedSortedByTime) {
  obs::TelemetryHub hub(/*ring_capacity=*/1024);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int p = 0; p < kThreads; ++p) {
    producers.emplace_back([&hub, p] {
      for (int i = 0; i < kPerThread; ++i) {
        hub.push(make_event(TelemetryEventKind::kDecodeStep, p * 1000.0 + i, 0.0f,
                            static_cast<std::uint32_t>(p)));
      }
    });
  }
  for (auto& t : producers) t.join();

  std::vector<TelemetryEvent> out;
  EXPECT_EQ(hub.drain(out), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(hub.dropped(), 0u);
  EXPECT_EQ(hub.ring_count(), static_cast<std::size_t>(kThreads));
  for (std::size_t i = 1; i < out.size(); ++i) EXPECT_LE(out[i - 1].t, out[i].t);

  // Per-producer event counts all arrived.
  std::vector<int> per_producer(kThreads, 0);
  for (const TelemetryEvent& ev : out) ++per_producer[ev.aux];
  for (int p = 0; p < kThreads; ++p) EXPECT_EQ(per_producer[p], kPerThread);
}

TEST(TelemetryHubTest, TwoHubsOnOneThreadDoNotCrossTalk) {
  obs::TelemetryHub a, b;
  a.push(make_event(TelemetryEventKind::kSubmit, 1.0));
  b.push(make_event(TelemetryEventKind::kSubmit, 2.0));
  b.push(make_event(TelemetryEventKind::kSubmit, 3.0));
  std::vector<TelemetryEvent> out_a, out_b;
  EXPECT_EQ(a.drain(out_a), 1u);
  EXPECT_EQ(b.drain(out_b), 2u);
  EXPECT_DOUBLE_EQ(out_a[0].t, 1.0);
  EXPECT_DOUBLE_EQ(out_b[0].t, 2.0);
}

TEST(TelemetryHubTest, RepeatPushesFromOneThreadReuseOneRing) {
  obs::TelemetryHub hub;
  for (int i = 0; i < 100; ++i) hub.push(make_event(TelemetryEventKind::kSubmit, i));
  EXPECT_EQ(hub.ring_count(), 1u);
}

// ---------------------------------------------------------------------------
// Rolling aggregators
// ---------------------------------------------------------------------------

TEST(RollingHistogramTest, EmptyWindowReportsAllZeros) {
  obs::RollingHistogram h(5.0);
  const obs::RollingStats s = h.stats(100.0);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(RollingHistogramTest, SingleSampleEveryPercentileIsTheSample) {
  obs::RollingHistogram h(5.0);
  h.observe(1.0, 0.25);
  const obs::RollingStats s = h.stats(1.0);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.p50, 0.25);
  EXPECT_DOUBLE_EQ(s.p95, 0.25);
  EXPECT_DOUBLE_EQ(s.p99, 0.25);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 0.25);
}

TEST(RollingHistogramTest, NearestRankPercentilesOverUniformSamples) {
  obs::RollingHistogram h(100.0);
  for (int i = 1; i <= 100; ++i) h.observe(0.0, i);
  const obs::RollingStats s = h.stats(0.0);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
}

TEST(RollingHistogramTest, WindowEvictsOldSamplesOnObserveAndStats) {
  obs::RollingHistogram h(5.0);
  h.observe(0.0, 1.0);
  h.observe(1.0, 2.0);
  h.observe(4.0, 3.0);
  EXPECT_EQ(h.stats(4.0).count, 3u);   // all inside [−1, 4]
  EXPECT_EQ(h.stats(5.5).count, 2u);   // t=0 aged out
  EXPECT_EQ(h.stats(6.5).count, 1u);   // t=1 aged out too
  EXPECT_EQ(h.stats(20.0).count, 0u);  // everything aged out
}

TEST(RollingHistogramTest, MaxSamplesBoundEvictsOldestFirst) {
  obs::RollingHistogram h(1e9, /*max_samples=*/4);
  for (int i = 0; i < 10; ++i) h.observe(i, i);
  const obs::RollingStats s = h.stats(9.0);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 6.0);  // only the 4 newest survive
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(EwmaRateTest, SteadyStreamConvergesToTrueRate) {
  obs::EwmaRate rate(/*tau_seconds=*/1.0);
  // 10 events/second for 6 tau. The discrete-event estimator converges to
  // dt/(1-exp(-dt))/tau * decay ≈ 9.5 at one inter-event gap past the last
  // event — within ~6% of the true rate.
  for (int i = 0; i < 60; ++i) rate.add(i * 0.1);
  EXPECT_NEAR(rate.rate(6.0), 10.0, 0.6);
}

TEST(EwmaRateTest, RateDecaysTowardZeroWhenIdle) {
  obs::EwmaRate rate(1.0);
  for (int i = 0; i < 20; ++i) rate.add(i * 0.1);
  const double busy = rate.rate(2.0);
  EXPECT_GT(busy, 1.0);
  EXPECT_LT(rate.rate(10.0), busy * 0.01);  // 8 tau later: effectively zero
}

// ---------------------------------------------------------------------------
// DriftMonitor (counter assertions need the obs registries clean + enabled)
// ---------------------------------------------------------------------------

class TelemetryObs : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
    ASSERT_TRUE(obs::set_enabled(true)) << "SATTN_TRACE=0 in the test environment";
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
  }

  static double counter_value(const std::string& name) {
    for (const obs::CounterValue& cv : obs::Collector::global().counters())
      if (cv.name == name) return cv.value;
    return 0.0;
  }

  static double gauge_value(const std::string& name) {
    for (const auto& [n, v] : obs::MetricsRegistry::global().snapshot().gauges)
      if (n == name) return v;
    return 0.0;
  }
};

obs::DriftThresholds fallback_thresholds() {
  obs::DriftThresholds th;
  th.window_seconds = 10.0;
  th.min_samples = 4;
  th.max_dense_fallback_rate = 0.5;
  return th;
}

TEST_F(TelemetryObs, DriftMonitorStaysQuietBelowMinSamples) {
  obs::DriftMonitor mon(fallback_thresholds());
  for (int i = 0; i < 3; ++i) mon.observe_plan(i * 0.1, 1.0, false, true);
  mon.evaluate(0.3);
  for (const obs::AlertState& a : mon.alerts()) EXPECT_FALSE(a.active) << a.name;
  EXPECT_FALSE(mon.quality_alert_active());
  EXPECT_EQ(counter_value("alert.dense_fallback_rate_high"), 0.0);
}

TEST_F(TelemetryObs, DenseFallbackAlertFiresOnRisingEdgeOnlyOnce) {
  obs::DriftMonitor mon(fallback_thresholds());
  for (int i = 0; i < 6; ++i) mon.observe_plan(i * 0.1, 1.0, false, true);
  mon.evaluate(0.6);
  mon.evaluate(0.7);  // still active: no second counter bump
  bool found = false;
  for (const obs::AlertState& a : mon.alerts()) {
    if (a.name == "dense_fallback_rate_high") {
      found = true;
      EXPECT_TRUE(a.active);
      EXPECT_DOUBLE_EQ(a.value, 1.0);
      EXPECT_DOUBLE_EQ(a.threshold, 0.5);
      EXPECT_DOUBLE_EQ(a.since_s, 0.6);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(mon.quality_alert_active());
  EXPECT_EQ(counter_value("alert.dense_fallback_rate_high"), 1.0);
}

TEST_F(TelemetryObs, AlertClearsWhenTheWindowRecoversAndRefiresOnRelapse) {
  obs::DriftThresholds th = fallback_thresholds();
  th.window_seconds = 1.0;
  obs::DriftMonitor mon(th);
  for (int i = 0; i < 6; ++i) mon.observe_plan(i * 0.01, 1.0, false, true);
  mon.evaluate(0.06);
  EXPECT_TRUE(mon.quality_alert_active());
  // 2 windows later everything aged out — the alert drops.
  mon.evaluate(3.0);
  EXPECT_FALSE(mon.quality_alert_active());
  // Relapse: a second rising edge, a second counter bump.
  for (int i = 0; i < 6; ++i) mon.observe_plan(4.0 + i * 0.01, 1.0, false, true);
  mon.evaluate(4.1);
  EXPECT_TRUE(mon.quality_alert_active());
  EXPECT_EQ(counter_value("alert.dense_fallback_rate_high"), 2.0);
}

TEST_F(TelemetryObs, UnconfiguredThresholdsNeverFireEvenOnPathologicalStreams) {
  obs::DriftThresholds th;  // everything at the -1 disabled default
  th.min_samples = 1;
  obs::DriftMonitor mon(th);
  for (int i = 0; i < 16; ++i) {
    mon.observe_plan(i * 0.1, 0.0, true, true);  // zero retention, all escalated+fallback
    mon.observe_ttft(i * 0.1, 100.0);
    mon.observe_tpot(i * 0.1, 100.0);
  }
  mon.evaluate(1.6);
  for (const obs::AlertState& a : mon.alerts()) EXPECT_FALSE(a.active) << a.name;
}

TEST_F(TelemetryObs, RetainedKvFractionAlertIsBelowThresholdSemantics) {
  obs::DriftThresholds th;
  th.min_samples = 4;
  th.min_retained_kv_frac = 0.3;
  obs::DriftMonitor mon(th);
  for (int i = 0; i < 4; ++i) mon.observe_plan(i * 0.1, 0.5, false, false);
  mon.evaluate(0.4);
  EXPECT_FALSE(mon.quality_alert_active());  // 0.5 >= 0.3: healthy
  for (int i = 0; i < 8; ++i) mon.observe_plan(0.5 + i * 0.1, 0.05, false, false);
  mon.evaluate(1.3);
  EXPECT_TRUE(mon.quality_alert_active());  // mean dropped below 0.3
  EXPECT_EQ(counter_value("alert.retained_kv_frac_low"), 1.0);
}

TEST_F(TelemetryObs, LatencyTailAlertsAreNotQualityAlerts) {
  obs::DriftThresholds th;
  th.min_samples = 2;
  th.max_ttft_p99_seconds = 0.010;
  obs::DriftMonitor mon(th);
  for (int i = 0; i < 4; ++i) mon.observe_ttft(i * 0.1, 0.5);
  mon.evaluate(0.4);
  bool ttft_active = false;
  for (const obs::AlertState& a : mon.alerts())
    if (a.name == "ttft_p99_high") ttft_active = a.active;
  EXPECT_TRUE(ttft_active);
  // Latency tails must not pre-trip the planning breaker.
  EXPECT_FALSE(mon.quality_alert_active());
  EXPECT_EQ(counter_value("alert.ttft_p99_high"), 1.0);
}

// ---------------------------------------------------------------------------
// TelemetryPublisher (driven deterministically through tick())
// ---------------------------------------------------------------------------

obs::EngineTelemetrySnapshot snapshot_at(double t) {
  obs::EngineTelemetrySnapshot s;
  s.t = t;
  s.live = 3;
  s.active = 2;
  s.kv_bytes = 1024.0;
  s.kv_budget_bytes = 4096.0;
  return s;
}

TEST_F(TelemetryObs, PublisherTickRendersParseableSchemaLine) {
  obs::TelemetryHub hub;
  hub.push(make_event(TelemetryEventKind::kSubmit, 0.1, 0.0f, 0, "a"));
  hub.push(make_event(TelemetryEventKind::kAdmit, 0.2, 0.0f, 0, "a"));
  hub.push(make_event(TelemetryEventKind::kPrefillDone, 0.3, 0.25f, 0, "a"));
  hub.push(make_event(TelemetryEventKind::kDecodeStep, 0.4, 0.002f, 0, "a"));
  hub.push(make_event(TelemetryEventKind::kComplete, 0.5, 0.002f, 4, "a"));
  hub.push(make_event(TelemetryEventKind::kPlan, 0.25, 0.4f, /*aux=*/1u, "a"));

  obs::TelemetryOptions topts;
  double now = 0.6;
  obs::TelemetryPublisher pub(topts, "unit", &hub, [&now] { return snapshot_at(now); });
  pub.tick();

  const auto parsed = parse_json(pub.last_line());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& o = parsed.value();
  EXPECT_EQ(o.get("schema").as_string(), "sattn.telemetry");
  EXPECT_EQ(o.get("version").as_number(), 1.0);
  EXPECT_EQ(o.get("label").as_string(), "unit");
  EXPECT_EQ(o.get("seq").as_number(), 0.0);
  EXPECT_EQ(o.get("engine").get("live").as_number(), 3.0);
  EXPECT_EQ(o.get("engine").get("kv_budget_bytes").as_number(), 4096.0);
  EXPECT_EQ(o.get("totals").get("submitted").as_number(), 1.0);
  EXPECT_EQ(o.get("totals").get("completed").as_number(), 1.0);
  EXPECT_EQ(o.get("totals").get("escalations").as_number(), 1.0);
  EXPECT_EQ(o.get("totals").get("dense_fallbacks").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(o.get("rolling").get("ttft_s").get("p99").as_number(), 0.25);
  EXPECT_EQ(o.get("rolling").get("ttft_s").get("count").as_number(), 1.0);
  EXPECT_NEAR(o.get("rolling").get("retained_kv_frac").get("mean").as_number(), 0.4, 1e-6);
  EXPECT_TRUE(o.get("alerts").is_array());
  EXPECT_EQ(o.get("alerts").size(), 0u);  // no thresholds configured
  EXPECT_EQ(o.get("events_dropped").as_number(), 0.0);

  // seq increments per tick; publisher-side counters advanced.
  pub.tick();
  const auto second = parse_json(pub.last_line());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().get("seq").as_number(), 1.0);
  EXPECT_EQ(pub.ticks(), 2u);
  EXPECT_EQ(pub.events_seen(), 6u);
  EXPECT_EQ(pub.totals().submitted, 1u);

  // Publisher gauges landed in the metrics registry.
  EXPECT_DOUBLE_EQ(gauge_value("telemetry.live_requests"), 3.0);
  EXPECT_DOUBLE_EQ(gauge_value("telemetry.ttft_p99_s"), 0.25);
}

TEST_F(TelemetryObs, PublisherWritesNdjsonAndAtomicPrometheusFiles) {
  const std::string ndjson = "telemetry_pub_test.ndjson";
  const std::string prom = "telemetry_pub_test.prom";
  obs::TelemetryHub hub;
  hub.push(make_event(TelemetryEventKind::kPrefillDone, 0.1, 0.125f));
  obs::TelemetryOptions topts;
  topts.ndjson_path = ndjson;
  topts.prom_path = prom;
  {
    obs::TelemetryPublisher pub(topts, "files", &hub, [] { return snapshot_at(0.2); });
    pub.tick();
    pub.tick();
  }
  std::ifstream in(ndjson);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  std::string last;
  while (std::getline(in, line))
    if (!line.empty()) { ++lines, last = line; }
  // Two manual ticks plus the destructor's final flush tick; the file was
  // truncated at publisher construction.
  EXPECT_EQ(lines, 3u);
  ASSERT_TRUE(parse_json(last).ok());

  std::ifstream pin(prom);
  ASSERT_TRUE(pin.good());
  std::stringstream body;
  body << pin.rdbuf();
  EXPECT_NE(body.str().find("sattn_ttft_p99_seconds{label=\"files\"} 0.125"),
            std::string::npos);
  EXPECT_NE(body.str().find("# TYPE sattn_engine_live_requests gauge"), std::string::npos);
  std::remove(ndjson.c_str());
  std::remove(prom.c_str());
  std::remove((prom + ".tmp").c_str());
}

TEST_F(TelemetryObs, PrometheusLabelValuesAreEscapedPerExpositionFormat) {
  // Run labels are caller-supplied strings; a quote, backslash, or newline
  // in one must not corrupt the exposition file (regression for the
  // prom_escape satellite: previously emitted verbatim).
  const std::string prom = "telemetry_escape_test.prom";
  obs::TelemetryHub hub;
  obs::TelemetryOptions topts;
  topts.prom_path = prom;
  {
    obs::TelemetryPublisher pub(topts, "we\"ird\\lab\nel", &hub,
                                [] { return snapshot_at(0.1); });
    pub.tick();
  }
  std::ifstream in(prom);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  // Escaped: `"` -> `\"`, `\` -> `\\`, newline -> the two characters \n.
  EXPECT_NE(body.str().find("{label=\"we\\\"ird\\\\lab\\nel\"}"), std::string::npos);
  // No raw newline survives inside any metric line's label value.
  std::string line;
  std::istringstream lines(body.str());
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.find("we\"ird"), std::string::npos) << line;
  }
  std::remove(prom.c_str());
  std::remove((prom + ".tmp").c_str());
}

TEST_F(TelemetryObs, BreakerPretripArmsOnQualityAlertAndConsumesOnce) {
  obs::TelemetryHub hub;
  for (int i = 0; i < 6; ++i) {
    hub.push(make_event(TelemetryEventKind::kPlan, i * 0.01, 1.0f, /*aux=*/2u));
  }
  obs::TelemetryOptions topts;
  topts.drift.min_samples = 4;
  topts.drift.max_dense_fallback_rate = 0.5;
  topts.drift.pretrip_breaker = true;
  obs::TelemetryPublisher pub(topts, "pretrip", &hub, [] { return snapshot_at(0.1); });
  EXPECT_FALSE(pub.consume_breaker_pretrip());  // nothing armed yet
  pub.tick();
  EXPECT_TRUE(pub.consume_breaker_pretrip());   // armed by the quality alert
  EXPECT_FALSE(pub.consume_breaker_pretrip());  // consumed: stays off...
  pub.tick();
  EXPECT_TRUE(pub.consume_breaker_pretrip());   // ...until the next tick re-arms
}

TEST_F(TelemetryObs, PretripStaysOffWithoutTheOptInEvenWhenAlertsFire) {
  obs::TelemetryHub hub;
  for (int i = 0; i < 6; ++i) {
    hub.push(make_event(TelemetryEventKind::kPlan, i * 0.01, 1.0f, /*aux=*/2u));
  }
  obs::TelemetryOptions topts;
  topts.drift.min_samples = 4;
  topts.drift.max_dense_fallback_rate = 0.5;  // alert fires...
  topts.drift.pretrip_breaker = false;        // ...but pretrip is not opted in
  obs::TelemetryPublisher pub(topts, "nopretrip", &hub, [] { return snapshot_at(0.1); });
  pub.tick();
  EXPECT_FALSE(pub.alerts().empty());
  bool any_active = false;
  for (const obs::AlertState& a : pub.alerts()) any_active |= a.active;
  EXPECT_TRUE(any_active);
  EXPECT_FALSE(pub.consume_breaker_pretrip());
}

TEST_F(TelemetryObs, PublisherThreadStartStopIsIdempotentAndFlushes) {
  obs::TelemetryHub hub;
  obs::TelemetryOptions topts;
  topts.interval_seconds = 0.001;
  obs::TelemetryPublisher pub(topts, "lifecycle", &hub, [] { return snapshot_at(1.0); });
  pub.start();
  hub.push(make_event(TelemetryEventKind::kSubmit, 0.5));
  pub.stop();
  pub.stop();  // idempotent
  // The final flush tick folded the event even if no timed tick saw it.
  EXPECT_EQ(pub.totals().submitted, 1u);
  EXPECT_GE(pub.ticks(), 1u);
  ASSERT_TRUE(parse_json(pub.last_line()).ok());
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

EngineOptions telemetry_engine() {
  EngineOptions opts;
  opts.mode = EngineMode::kDense;
  opts.head_dim = 32;
  opts.chunk_tokens = 64;
  opts.max_batch = 4;
  opts.decode_tokens = 2;
  opts.run_label = "tele";
  opts.telemetry.enabled = true;
  opts.telemetry.interval_seconds = 0.002;
  return opts;
}

TEST_F(TelemetryObs, EngineRunStreamsTelemetryWithTotalsMatchingTheResult) {
  const std::string path = "telemetry_engine_test.ndjson";
  EngineOptions opts = telemetry_engine();
  opts.telemetry.ndjson_path = path;
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace;
  for (int i = 0; i < 6; ++i) trace.push_back({"r" + std::to_string(i), 128, 0.0});
  const EngineResult res = engine.run_trace(trace);
  ASSERT_EQ(res.completed.size(), 6u);

  // The publisher outlives finish() until engine destruction; its final
  // flush has run by the time run_trace returns.
  obs::TelemetryPublisher* pub = engine.telemetry_publisher();
  ASSERT_NE(pub, nullptr);
  const obs::TelemetryTotals totals = pub->totals();
  EXPECT_EQ(totals.submitted, 6u);
  EXPECT_EQ(totals.admitted, 6u);
  EXPECT_EQ(totals.completed, 6u);
  EXPECT_EQ(totals.shed, 0u);
  EXPECT_EQ(totals.decode_steps, 12u);  // 6 requests x 2 decode tokens
  EXPECT_GE(totals.prefill_chunks, 12u);  // 128 tokens / 64 chunk = 2 each
  EXPECT_GE(pub->ticks(), 1u);

  const auto parsed = parse_json(pub->last_line());
  ASSERT_TRUE(parsed.ok());
  const JsonValue& o = parsed.value();
  EXPECT_EQ(o.get("label").as_string(), "tele");
  EXPECT_EQ(o.get("totals").get("completed").as_number(), 6.0);
  EXPECT_EQ(o.get("engine").get("live").as_number(), 0.0);  // drained
  EXPECT_EQ(o.get("rolling").get("ttft_s").get("count").as_number(), 6.0);
  EXPECT_EQ(o.get("events_dropped").as_number(), 0.0);

  // Satellite: the watchdog heartbeat is a public gauge now.
  EXPECT_GE(gauge_value("engine.heartbeat_age_s"), 0.0);
  EXPECT_GE(engine.heartbeat_age_seconds(), 0.0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line))
    if (!line.empty()) ++lines;
  EXPECT_EQ(lines, pub->ticks());
  std::remove(path.c_str());
}

TEST_F(TelemetryObs, ConcurrentSubmittersWithLivePublisherLoseNoEvents) {
  // The TSan target: 4 submitter threads + engine loop + watchdog + the
  // publisher thread all running, rings fanning into one consumer.
  EngineOptions opts = telemetry_engine();
  opts.watchdog_stall_seconds = 5.0;
  ServingEngine engine(opts);
  engine.start();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> submitters;
  std::atomic<int> accepted{0};
  for (int p = 0; p < kThreads; ++p) {
    submitters.emplace_back([&engine, &accepted, p] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string id = "p" + std::to_string(p) + "_" + std::to_string(i);
        if (engine.submit({id, 64, 0.0}).ok()) accepted.fetch_add(1);
      }
    });
  }
  for (auto& t : submitters) t.join();
  const EngineResult res = engine.finish();
  ASSERT_EQ(accepted.load(), kThreads * kPerThread);
  EXPECT_EQ(res.outcomes().size(), static_cast<std::size_t>(kThreads * kPerThread));

  obs::TelemetryPublisher* pub = engine.telemetry_publisher();
  ASSERT_NE(pub, nullptr);
  const obs::TelemetryTotals totals = pub->totals();
  EXPECT_EQ(totals.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(totals.completed + totals.shed + totals.cancelled,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST_F(TelemetryObs, QualityDriftPretripOpensThePlanningBreaker) {
  // Every plan corrupted -> dense-fallback alert -> publisher arms pretrip
  // -> the engine loop opens the breaker even though the consecutive-fault
  // breaker itself is disabled (threshold 0).
  EngineOptions opts = telemetry_engine();
  opts.mode = EngineMode::kSampleAttention;
  opts.chunk_tokens = 128;
  opts.decode_tokens = 8;
  auto injector = std::make_shared<FaultInjector>(
      FaultSpec{FaultClass::kPlanEmptyStripes, 1.0, 0x9ull, /*max_fires=*/-1});
  opts.guard.plan_hook = [injector](SamplePlan& plan) { injector->corrupt_plan(plan); };
  opts.breaker_fault_threshold = 0;  // the fault-streak breaker stays out of the way
  opts.breaker_cooldown_seconds = 1e-4;
  // Manual ticks below: park the publisher thread on a huge interval so the
  // test drives the pipeline deterministically from this thread.
  opts.telemetry.interval_seconds = 1e6;
  opts.telemetry.drift.min_samples = 2;
  opts.telemetry.drift.window_seconds = 60.0;
  opts.telemetry.drift.max_dense_fallback_rate = 0.5;
  opts.telemetry.drift.pretrip_breaker = true;

  ServingEngine engine(opts);
  engine.start();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.submit({"q" + std::to_string(i), 512, 0.0}).ok());
  }
  // Tick the publisher until the drift monitor has seen enough plans to
  // raise the alert, then give the loop time to consume the pretrip.
  obs::TelemetryPublisher* pub = engine.telemetry_publisher();
  ASSERT_NE(pub, nullptr);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (counter_value("engine.breaker_pretrips") < 1.0 &&
         std::chrono::steady_clock::now() < deadline) {
    pub->tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const EngineResult res = engine.finish();
  EXPECT_EQ(res.completed.size(), 6u);
  EXPECT_GE(counter_value("engine.breaker_pretrips"), 1.0);
  EXPECT_GE(counter_value("engine.breaker_trips"), 1.0);
  EXPECT_GE(res.breaker_trips, 1);
}

TEST_F(TelemetryObs, DisabledTelemetryCreatesNoHubNoPublisherNoStream) {
  EngineOptions opts = telemetry_engine();
  opts.telemetry.enabled = false;
  opts.telemetry.ndjson_path = "telemetry_disabled_test.ndjson";
  ServingEngine engine(opts);
  std::vector<ServingRequest> trace = {{"d0", 64, 0.0}};
  const EngineResult res = engine.run_trace(trace);
  EXPECT_EQ(res.completed.size(), 1u);
  EXPECT_EQ(engine.telemetry_publisher(), nullptr);
  std::ifstream in("telemetry_disabled_test.ndjson");
  EXPECT_FALSE(in.good());  // never created
}

// ---------------------------------------------------------------------------
// Overhead bound
// ---------------------------------------------------------------------------

bool built_with_sanitizers() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(TelemetryOverheadTest, EnabledVsDisabledEngineRunUnderTwoPercent) {
  if (built_with_sanitizers()) {
    GTEST_SKIP() << "wall-time comparison is not meaningful under sanitizers";
  }
  // The cost contract from docs/OBSERVABILITY.md: enabling the telemetry
  // plane (rings + publisher thread + NDJSON stream) must cost < 2% wall
  // time on an engine run, with a small absolute epsilon to absorb
  // thread-scheduling noise on short runs. obs collection is off in both
  // arms so the comparison isolates the telemetry plane itself.
  obs::set_enabled(false);
  const auto build_trace = [] {
    std::vector<ServingRequest> trace;
    for (int i = 0; i < 16; ++i) trace.push_back({"o" + std::to_string(i), 512, 0.0});
    return trace;
  };
  const auto run_once = [&](bool telemetry_on) {
    EngineOptions opts;
    opts.mode = EngineMode::kDense;
    opts.head_dim = 64;
    opts.chunk_tokens = 256;
    opts.max_batch = 8;
    opts.decode_tokens = 8;
    opts.run_label = telemetry_on ? "ov_on" : "ov_off";
    opts.telemetry.enabled = telemetry_on;
    if (telemetry_on) opts.telemetry.ndjson_path = "telemetry_overhead_test.ndjson";
    const std::vector<ServingRequest> trace = build_trace();
    const auto t0 = std::chrono::steady_clock::now();
    ServingEngine engine(opts);
    const EngineResult res = engine.run_trace(trace);
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    EXPECT_EQ(res.completed.size(), trace.size());
    return s;
  };

  run_once(false);  // warm both paths (thread pool spin-up, page faults)
  run_once(true);

  // Interleaved min-of-N with retry attempts, as in the accounting overhead
  // guard: the bound is on the hooks, one clean window suffices.
  constexpr int kReps = 4;
  constexpr int kAttempts = 3;
  constexpr double kAbsEpsilonSeconds = 0.010;
  bool pass = false;
  double best_on = 0.0, best_off = 0.0;
  for (int attempt = 0; attempt < kAttempts && !pass; ++attempt) {
    best_on = std::numeric_limits<double>::infinity();
    best_off = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      best_off = std::min(best_off, run_once(false));
      best_on = std::min(best_on, run_once(true));
    }
    ASSERT_GT(best_off, 0.0);
    pass = best_on <= best_off * 1.02 + kAbsEpsilonSeconds;
  }
  EXPECT_TRUE(pass) << "telemetry-enabled " << best_on << "s vs disabled " << best_off
                    << "s exceeds the 2% + " << kAbsEpsilonSeconds << "s bound";
  std::remove("telemetry_overhead_test.ndjson");
}

}  // namespace
}  // namespace sattn
