// Tests for the robustness subsystem: input validation, deterministic fault
// injection, and the guarded SampleAttention escalation ladder
// (docs/ROBUSTNESS.md).
//
// The central property (satellite of the near-lossless claim): for EVERY
// injected fault class, the guarded pipeline either returns a clean checked
// error or produces an output within recovery-metric tolerance of dense
// attention on the same (possibly corrupted) input. No aborts, no NaN soup.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "attention/flash_attention.h"
#include "metrics/recovery.h"
#include "model/workload.h"
#include "robust/fault_injection.h"
#include "robust/validate.h"
#include "runtime/scheduler.h"
#include "sample_attention/guarded.h"

namespace sattn {
namespace {

AttentionInput structured_head(Index s = 256) {
  return generate_attention(chatglm2_6b(), plain_prompt(7, s), 8, 3);
}

TEST(Validate, AcceptsCleanInput) {
  const AttentionInput in = structured_head();
  EXPECT_TRUE(validate_attention_input(in).ok());
}

TEST(Validate, RejectsNaNAndInfWithLocation) {
  AttentionInput in = structured_head();
  in.k(3, 2) = std::numeric_limits<float>::quiet_NaN();
  const Status s = validate_attention_input(in);
  EXPECT_EQ(s.code(), StatusCode::kDataCorruption);
  EXPECT_NE(s.message().find("K"), std::string::npos);

  AttentionInput in2 = structured_head();
  in2.v(0, 0) = std::numeric_limits<float>::infinity();
  EXPECT_EQ(validate_attention_input(in2).code(), StatusCode::kDataCorruption);
}

TEST(Validate, RejectsShapeMismatch) {
  AttentionInput in = structured_head();
  in.v.resize(in.sk() - 1, in.head_dim());
  EXPECT_EQ(validate_attention_input(in).code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjector, DeterministicInSeed) {
  const AttentionInput base = structured_head(128);
  for (FaultClass kind : tensor_fault_classes()) {
    AttentionInput a = base, b = base;
    FaultInjector ia({kind, 1.0, 77, -1});
    FaultInjector ib({kind, 1.0, 77, -1});
    ia.corrupt_input(a);
    ib.corrupt_input(b);
    ASSERT_EQ(ia.fires(), 1) << fault_class_name(kind);
    for (const Matrix* ma : {&a.q, &a.k, &a.v}) {
      const Matrix* mb = ma == &a.q ? &b.q : ma == &a.k ? &b.k : &b.v;
      ASSERT_EQ(ma->rows(), mb->rows());
      for (Index i = 0; i < ma->rows(); ++i) {
        for (Index t = 0; t < ma->cols(); ++t) {
          const float x = (*ma)(i, t), y = (*mb)(i, t);
          EXPECT_TRUE(x == y || (std::isnan(x) && std::isnan(y)))
              << fault_class_name(kind) << " diverged at " << i << "," << t;
        }
      }
    }
  }
}

TEST(FaultInjector, RateZeroNeverFiresAndMaxFiresCaps) {
  FaultInjector off({FaultClass::kTensorNaN, 0.0, 5, -1});
  AttentionInput in = structured_head(64);
  for (int r = 0; r < 20; ++r) off.corrupt_input(in);
  EXPECT_EQ(off.fires(), 0);
  EXPECT_TRUE(validate_attention_input(in).ok());

  FaultInjector capped({FaultClass::kPlanEmptyStripes, 1.0, 5, 2});
  for (int r = 0; r < 10; ++r) capped.should_fire();
  EXPECT_EQ(capped.fires(), 2);
}

TEST(Guarded, CleanInputTakesPrimaryPlan) {
  const AttentionInput in = structured_head();
  Matrix out;
  GuardReport report;
  ASSERT_TRUE(guarded_sample_attention(in, {}, {}, out, &report).ok());
  EXPECT_EQ(report.outcome, GuardOutcome::kPrimary);
  EXPECT_EQ(report.plan_rejects, 0);
  EXPECT_GT(report.coverage, 0.8);
  EXPECT_LT(report.density, 1.0);
  Matrix exact;
  flash_attention(in, exact);
  EXPECT_LT(recovery_stats(out, exact).rel_l1, 0.15);
}

TEST(Guarded, CorruptedInputIsCleanErrorNotCrash) {
  AttentionInput in = structured_head();
  in.q(1, 1) = std::numeric_limits<float>::quiet_NaN();
  Matrix out;
  const Status s = guarded_sample_attention(in, {}, {}, out);
  EXPECT_EQ(s.code(), StatusCode::kDataCorruption);
}

TEST(Guarded, TransientPlanFaultRecoversViaLadder) {
  // One injected plan fault: the primary plan is rejected, the re-sampled
  // rung produces a clean plan and serves the request.
  const AttentionInput in = structured_head();
  FaultInjector inj({FaultClass::kPlanPoisonedStats, 1.0, 9, /*max_fires=*/1});
  GuardConfig guard;
  guard.plan_hook = [&inj](SamplePlan& plan) { inj.corrupt_plan(plan); };
  Matrix out;
  GuardReport report;
  ASSERT_TRUE(guarded_sample_attention(in, {}, guard, out, &report).ok());
  EXPECT_EQ(report.outcome, GuardOutcome::kResampled);
  EXPECT_EQ(report.plan_rejects, 1);
  EXPECT_EQ(report.resamples, 1);
  Matrix exact;
  flash_attention(in, exact);
  EXPECT_LT(recovery_stats(out, exact).rel_l1, 0.15);
}

TEST(Guarded, PersistentFaultFallsBackToExactDense) {
  // Every sparse plan is corrupted: the ladder exhausts and dense
  // FlashAttention serves the request exactly.
  const AttentionInput in = structured_head();
  FaultInjector inj({FaultClass::kPlanTruncatedMask, 1.0, 11, -1});
  GuardConfig guard;
  guard.plan_hook = [&inj](SamplePlan& plan) { inj.corrupt_plan(plan); };
  Matrix out;
  GuardReport report;
  ASSERT_TRUE(guarded_sample_attention(in, {}, guard, out, &report).ok());
  EXPECT_EQ(report.outcome, GuardOutcome::kDenseFallback);
  EXPECT_GT(report.plan_rejects, 0);
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
  Matrix exact;
  flash_attention(in, exact);
  EXPECT_EQ(recovery_stats(out, exact).max_abs_err, 0.0) << "dense fallback must be exact";
}

TEST(Guarded, FallbackDisabledIsUnavailableNotCrash) {
  const AttentionInput in = structured_head();
  FaultInjector inj({FaultClass::kPlanTruncatedMask, 1.0, 13, -1});
  GuardConfig guard;
  guard.allow_dense_fallback = false;
  guard.plan_hook = [&inj](SamplePlan& plan) { inj.corrupt_plan(plan); };
  Matrix out;
  GuardReport report;
  const Status s = guarded_sample_attention(in, {}, guard, out, &report);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(report.last_reject.empty());
}

// The satellite property test: every fault class, clean error OR recovery
// within tolerance of dense attention on the same input.
TEST(Guarded, PropertyEveryFaultClassErrorsCleanlyOrRecovers) {
  const AttentionInput clean = structured_head();
  for (FaultClass kind : tensor_fault_classes()) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      AttentionInput in = clean;
      FaultInjector inj({kind, 1.0, seed, -1});
      inj.corrupt_input(in);
      Matrix out;
      GuardReport report;
      const Status s = guarded_sample_attention(in, {}, {}, out, &report);
      if (!s.ok()) {
        EXPECT_EQ(s.code(), StatusCode::kDataCorruption)
            << fault_class_name(kind) << " seed " << seed << ": " << s.to_string();
        continue;
      }
      Matrix dense;
      flash_attention(in, dense);  // reference on the SAME corrupted input
      EXPECT_LT(recovery_stats(out, dense).rel_l1, 0.35)
          << fault_class_name(kind) << " seed " << seed << " outcome "
          << guard_outcome_name(report.outcome);
    }
  }
  for (FaultClass kind : plan_fault_classes()) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      FaultInjector inj({kind, 1.0, seed, -1});
      GuardConfig guard;
      guard.plan_hook = [&inj](SamplePlan& plan) { inj.corrupt_plan(plan); };
      Matrix out;
      GuardReport report;
      const Status s = guarded_sample_attention(clean, {}, guard, out, &report);
      ASSERT_TRUE(s.ok()) << fault_class_name(kind)
                          << ": plan faults are always recoverable, got " << s.to_string();
      Matrix dense;
      flash_attention(clean, dense);
      EXPECT_LT(recovery_stats(out, dense).rel_l1, 0.35)
          << fault_class_name(kind) << " seed " << seed << " outcome "
          << guard_outcome_name(report.outcome);
    }
  }
}

TEST(GuardedMethod, AdapterZeroesOutputOnUnrecoverableInput) {
  GuardedSampleAttention method;
  AttentionInput in = structured_head(128);
  in.k(0, 0) = std::numeric_limits<float>::quiet_NaN();
  const AttentionResult r = method.run(in);
  EXPECT_FALSE(method.last_status().ok());
  EXPECT_DOUBLE_EQ(r.density, 0.0);
  for (float x : r.out.flat()) EXPECT_FLOAT_EQ(x, 0.0f);

  const AttentionInput good = structured_head(128);
  const AttentionResult ok = method.run(good);
  EXPECT_TRUE(method.last_status().ok());
  EXPECT_GT(ok.density, 0.0);
  EXPECT_LT(ok.density, 1.0);
}

TEST(TraceFaults, OversizedArrivalsAreShedAtAdmission) {
  auto trace = synthetic_trace(16, 8 * 1024, 32 * 1024, 1.0, 31).value();
  FaultInjector inj({FaultClass::kTraceOversizedArrival, 0.5, 17, -1});
  inj.corrupt_trace(trace, /*oversize_to=*/1 << 20);
  ASSERT_GT(inj.fires(), 0);
  Engine fa2;
  SloOptions opts;
  opts.max_prompt_tokens = 256 * 1024;
  const SloServingResult res = simulate_queue_slo(trace, fa2, opts).value();
  EXPECT_EQ(res.completed.size() + res.shed.size(), trace.size());
  EXPECT_EQ(res.shed.size(), static_cast<std::size_t>(inj.fires()));
  for (const ShedRequest& s : res.shed) EXPECT_EQ(s.reason, "oversized");
}

TEST(TraceFaults, BurstArrivalsStillConserveRequests) {
  auto trace = synthetic_trace(16, 8 * 1024, 32 * 1024, 4.0, 37).value();
  FaultInjector inj({FaultClass::kTraceBurstArrival, 1.0, 19, 1});
  inj.corrupt_trace(trace, 0);
  Engine fa2;
  const SloServingResult res = simulate_queue_slo(trace, fa2, {}).value();
  EXPECT_EQ(res.completed.size(), trace.size()) << "no guardrails enabled, nothing sheds";
}

}  // namespace
}  // namespace sattn
