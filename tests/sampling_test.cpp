// Tests for Stage-1 query-guided attention sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "attention/score_utils.h"
#include "core/numerics.h"
#include "core/rng.h"
#include "sample_attention/sampling.h"

namespace sattn {
namespace {

AttentionInput random_input(Index s, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(s, d);
  in.k.resize(s, d);
  in.v.resize(s, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

TEST(StrideRows, CoversRangeEvenly) {
  auto rows = stride_rows(100, 0.05);
  EXPECT_GE(rows.size(), 5u);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  EXPECT_EQ(rows.back(), 99);  // last row always included
  for (Index r : rows) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 100);
  }
}

TEST(StrideRows, AtLeastOneRow) {
  auto rows = stride_rows(10, 0.0);
  EXPECT_FALSE(rows.empty());
}

TEST(StrideRows, FullRatioGivesAllRows) {
  auto rows = stride_rows(16, 1.0);
  EXPECT_EQ(rows.size(), 16u);
}

TEST(SampleColumnWeights, TotalMassEqualsRowCount) {
  AttentionInput in = random_input(64, 8, 1);
  const SampleStats st = sample_column_weights(in, 0.25);
  // Each causal-softmaxed row sums to 1.
  EXPECT_NEAR(st.total_mass, static_cast<double>(st.sampled_rows.size()), 1e-4);
  EXPECT_DOUBLE_EQ(st.window_mass, 0.0);  // no exclusion window
  EXPECT_NEAR(dsum(st.column_weight), st.total_mass, 1e-4);
}

TEST(SampleColumnWeights, WindowExclusionSplitsMass) {
  AttentionInput in = random_input(64, 8, 2);
  const SampleStats st = sample_column_weights(in, 0.25, SamplingPolicy::kStride, 8);
  EXPECT_GT(st.window_mass, 0.0);
  EXPECT_NEAR(dsum(st.column_weight) + st.window_mass, st.total_mass, 1e-4);
}

TEST(SampleColumnWeights, FullWindowExclusionLeavesNoColumnMass) {
  AttentionInput in = random_input(32, 8, 3);
  const SampleStats st = sample_column_weights(in, 0.5, SamplingPolicy::kStride, 32);
  EXPECT_NEAR(dsum(st.column_weight), 0.0, 1e-5);
  EXPECT_NEAR(st.window_mass, st.total_mass, 1e-4);
}

TEST(SampleColumnWeights, DetectsPlantedColumn) {
  // Make column 5 attractive for every query.
  AttentionInput in = random_input(64, 8, 4);
  for (Index t = 0; t < 8; ++t) in.k(5, t) = 0.0f;
  for (Index i = 0; i < 64; ++i) {
    for (Index t = 0; t < 8; ++t) in.k(5, t) += in.q(i, t) / 8.0f;
  }
  for (Index t = 0; t < 8; ++t) in.k(5, t) *= 10.0f;
  const SampleStats st = sample_column_weights(in, 0.2);
  const auto argmax = static_cast<Index>(
      std::max_element(st.column_weight.begin() + 1, st.column_weight.end()) -
      st.column_weight.begin());
  EXPECT_EQ(argmax, 5);
}

TEST(SampleColumnWeights, RandomPolicyIsSeededAndSorted) {
  AttentionInput in = random_input(64, 4, 5);
  const SampleStats a = sample_column_weights(in, 0.2, SamplingPolicy::kRandom, 0, 7);
  const SampleStats b = sample_column_weights(in, 0.2, SamplingPolicy::kRandom, 0, 7);
  const SampleStats c = sample_column_weights(in, 0.2, SamplingPolicy::kRandom, 0, 8);
  EXPECT_EQ(a.sampled_rows, b.sampled_rows);
  EXPECT_NE(a.sampled_rows, c.sampled_rows);
  EXPECT_TRUE(std::is_sorted(a.sampled_rows.begin(), a.sampled_rows.end()));
}

TEST(SampleColumnWeights, TailOnlyTakesLastRows) {
  AttentionInput in = random_input(40, 4, 6);
  const SampleStats st = sample_column_weights(in, 0.25, SamplingPolicy::kTailOnly);
  ASSERT_EQ(st.sampled_rows.size(), 10u);
  EXPECT_EQ(st.sampled_rows.front(), 30);
  EXPECT_EQ(st.sampled_rows.back(), 39);
}

TEST(SamplingOverhead, ProportionalToRatio) {
  AttentionInput in = random_input(128, 4, 7);
  const SampleStats small = sample_column_weights(in, 0.05);
  const SampleStats big = sample_column_weights(in, 0.20);
  const double f_small = sampling_overhead_fraction(small, 128, 128);
  const double f_big = sampling_overhead_fraction(big, 128, 128);
  EXPECT_GT(f_big, f_small);
  EXPECT_LT(f_small, 0.12);
  EXPECT_GT(f_small, 0.01);
}

// Property: the sampled column statistic approximates the full-row statistic
// (correlation of top-columns). Run over several structured seeds.
class SamplingApproxProperty : public ::testing::TestWithParam<int> {};

TEST_P(SamplingApproxProperty, SampledTopColumnsOverlapExactTopColumns) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Index s = 96;
  AttentionInput in = random_input(s, 8, seed);
  // Plant 6 strong columns shared by all queries.
  Rng rng(seed ^ 0xabc);
  std::vector<Index> planted;
  for (int c = 0; c < 6; ++c) {
    const Index col = 1 + rng.uniform_index(s / 2);  // first half: visible to many rows
    planted.push_back(col);
    for (Index t = 0; t < 8; ++t) in.k(col, t) = 0.0f;
    for (Index i = 0; i < s; ++i)
      for (Index t = 0; t < 8; ++t) in.k(col, t) += in.q(i, t) / static_cast<float>(s);
    for (Index t = 0; t < 8; ++t) in.k(col, t) *= 40.0f;
  }
  const SampleStats sampled = sample_column_weights(in, 0.1);
  const auto exact_rows = all_rows(s);
  const auto exact = column_score_sum(in, exact_rows);

  // The sampled top-8 must sit inside the exact top-16: the statistic can
  // reshuffle near-ties but must not surface spurious columns.
  auto top_sampled = topk_indices(sampled.column_weight, 8);
  auto top_exact = topk_indices(exact, 16);
  std::set<Index> se(top_exact.begin(), top_exact.end());
  int overlap = 0;
  for (Index t : top_sampled) overlap += se.count(t) > 0 ? 1 : 0;
  EXPECT_GE(overlap, 6) << "sampled statistic diverged from exact statistic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingApproxProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace sattn
