// Tests for the resource accountant (obs/accounting.h) and the cost-model
// cross-validation (perf/model_validation.h): closed-form FLOP/byte counts
// for the dense and sparse kernels at hand-computable shapes, the
// sparse-bytes-scale-with-density property, (layer, head) / request
// attribution, the `acct.*` / `perf.model_error.*` gauge publication, the
// dense-flash-vs-attention_flops 1% acceptance bound at S in {1K, 4K, 16K},
// and the disabled-mode overhead smoke test for the flash hot loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "attention/flash_attention.h"
#include "attention/full_attention.h"
#include "attention/sparse_flash_attention.h"
#include "core/numerics.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "obs/accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/cost_model.h"
#include "perf/model_validation.h"

namespace sattn {
namespace {

using obs::AcctScope;
using obs::RequestContext;
using obs::ResourceAccountant;
using obs::ResourceUsage;
using obs::kAcctBytesPerElement;

AttentionInput random_input(Index sq, Index sk, Index d, std::uint64_t seed) {
  AttentionInput in;
  in.q.resize(sq, d);
  in.k.resize(sk, d);
  in.v.resize(sk, d);
  Rng rng(seed);
  rng.fill_normal(in.q);
  rng.fill_normal(in.k);
  rng.fill_normal(in.v);
  return in;
}

// Exact causal score-eval count: sum over rows of (causal_limit + 1).
double exact_evals(Index sq, Index sk) { return causal_pairs(sq, sk); }

// The accounting conventions of obs/accounting.h, spelled out by hand so a
// convention drift in the implementation is caught, not mirrored.
double expect_flops(Index d, double evals) { return 4.0 * static_cast<double>(d) * evals; }
double expect_stream_bytes(Index sq, Index d, double evals) {
  // Q read + O write (2 * sq * d elements) + K/V streams (2 * d per eval).
  return kAcctBytesPerElement *
         (2.0 * static_cast<double>(sq) * static_cast<double>(d) +
          2.0 * static_cast<double>(d) * evals);
}
double expect_full_score_bytes(Index sq, Index sk, double evals) {
  // full_attention materializes the whole [sq x sk] logits buffer (one
  // write pass) and reads the causal prefix back.
  return kAcctBytesPerElement * (static_cast<double>(sq) * static_cast<double>(sk) + evals);
}

// Every test starts from a clean, enabled collector/registry/accountant and
// leaves collection off.
class AccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
    ResourceAccountant::global().reset();
    ASSERT_TRUE(obs::set_enabled(true)) << "SATTN_TRACE=0 in the test environment";
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
    ResourceAccountant::global().reset();
  }
};

// ---------------------------------------------------------------------------
// Closed-form counts at small shapes.

TEST_F(AccountingTest, FullAttentionClosedFormCounts) {
  const Index s = 8, d = 4;
  AttentionInput in = random_input(s, s, d, 1);
  Matrix out;
  full_attention(in, out);

  const double evals = exact_evals(s, s);  // 1+2+...+8 = 36
  ASSERT_EQ(evals, 36.0);
  const ResourceUsage u = ResourceAccountant::global().kernel_total("full");
  EXPECT_DOUBLE_EQ(u.flops, expect_flops(d, evals));  // 4*4*36 = 576
  EXPECT_DOUBLE_EQ(u.bytes,
                   expect_stream_bytes(s, d, evals) + expect_full_score_bytes(s, s, evals));
  EXPECT_DOUBLE_EQ(u.calls, 1.0);
  EXPECT_GT(u.intensity(), 0.0);
}

TEST_F(AccountingTest, FlashClosedFormCountsAreTileInvariant) {
  const Index s = 8, d = 4;
  AttentionInput in = random_input(s, s, d, 2);
  const double evals = exact_evals(s, s);

  // Default tiles, then deliberately awkward ones: the measured eval count
  // is a property of the causal shape, not of the tiling.
  for (const FlashConfig cfg : {FlashConfig{}, FlashConfig{3, 5}}) {
    ResourceAccountant::global().reset();
    Matrix out;
    flash_attention(in, out, cfg);
    const ResourceUsage u = ResourceAccountant::global().kernel_total("flash");
    EXPECT_DOUBLE_EQ(u.flops, expect_flops(d, evals));
    // No score traffic: flash never materializes the logits matrix.
    EXPECT_DOUBLE_EQ(u.bytes, expect_stream_bytes(s, d, evals));
    EXPECT_DOUBLE_EQ(u.calls, 1.0);
  }
}

TEST_F(AccountingTest, RectangularShapesCountThePrefixOffset) {
  // sq=5, sk=9: row i attends keys 0..i+4, so evals = 5+6+7+8+9 = 35.
  const Index sq = 5, sk = 9, d = 2;
  AttentionInput in = random_input(sq, sk, d, 3);
  Matrix out;
  full_attention(in, out);
  flash_attention(in, out);
  EXPECT_DOUBLE_EQ(ResourceAccountant::global().kernel_total("full").flops,
                   expect_flops(d, 35.0));
  EXPECT_DOUBLE_EQ(ResourceAccountant::global().kernel_total("flash").flops,
                   expect_flops(d, 35.0));
}

TEST_F(AccountingTest, SparseFullWindowMatchesFlashWork) {
  // A full-window mask retains every causal pair, so the sparse kernel must
  // account exactly the dense flash FLOPs; bytes add only mask metadata.
  const Index s = 32, d = 8;
  AttentionInput in = random_input(s, s, d, 4);
  StructuredMask mask(s, s);
  mask.set_window(s);
  Matrix out;
  sparse_flash_attention(in, mask, out);

  const double evals = exact_evals(s, s);
  const ResourceUsage u = ResourceAccountant::global().kernel_total("sparse_flash");
  EXPECT_DOUBLE_EQ(u.flops, expect_flops(d, evals));
  EXPECT_GE(u.bytes, expect_stream_bytes(s, d, evals));  // + metadata traffic
}

TEST_F(AccountingTest, SparseBytesScaleWithRetainedKvFraction) {
  // Property: accounted sparse bytes ~= dense flash bytes x retained-KV
  // fraction. The residual is the non-KV traffic (Q/O streams, mask
  // metadata), which is O(s*d) against the O(s^2*d) KV term, so 5% covers
  // it at s=256 for moderate densities.
  const Index s = 256, d = 32;
  AttentionInput in = random_input(s, s, d, 5);
  const double dense_bytes =
      expect_stream_bytes(s, d, exact_evals(s, s));

  struct Pattern {
    Index window;
    std::vector<Index> stripes;
  };
  const std::vector<Pattern> patterns = {
      {64, {}},
      {48, {0, 1, 2, 3, 17, 63, 128}},
      {96, {5, 31, 200, 201, 202}},
  };
  for (const Pattern& p : patterns) {
    StructuredMask mask(s, s);
    mask.set_window(p.window);
    std::vector<Index> cols = p.stripes;
    mask.set_stripe_columns(std::move(cols));
    const double fraction = mask.density();
    ASSERT_GT(fraction, 0.15);

    ResourceAccountant::global().reset();
    Matrix out;
    sparse_flash_attention(in, mask, out);
    const ResourceUsage u = ResourceAccountant::global().kernel_total("sparse_flash");
    EXPECT_NEAR(u.bytes / (dense_bytes * fraction), 1.0, 0.05)
        << "window=" << p.window << " stripes=" << p.stripes.size()
        << " density=" << fraction;
    // The FLOP side is exact: evals == density * causal_pairs by
    // construction of density().
    EXPECT_NEAR(u.flops, expect_flops(d, fraction * exact_evals(s, s)),
                1e-6 * u.flops);
  }
}

TEST_F(AccountingTest, StageChargesLandUnderTheirNameWithoutShape) {
  obs::charge_stage("sampling", 10.0, 20.0);
  obs::charge_stage("sampling", 5.0, 40.0);
  const ResourceUsage u = ResourceAccountant::global().kernel_total("sampling");
  EXPECT_DOUBLE_EQ(u.flops, 15.0);
  EXPECT_DOUBLE_EQ(u.bytes, 60.0);
  EXPECT_DOUBLE_EQ(u.calls, 2.0);
  // Stages carry no [sq x sk] shape, so they must not pollute the per-shape
  // view the cost-model validation sweeps.
  EXPECT_TRUE(ResourceAccountant::global().shapes().empty());
}

// ---------------------------------------------------------------------------
// Attribution.

TEST_F(AccountingTest, AcctScopeKeysChargesByLayerAndHead) {
  AttentionInput in = random_input(4, 4, 2, 6);
  Matrix out;
  {
    AcctScope scope(2, 7);
    EXPECT_EQ(AcctScope::current(), (std::pair<long long, long long>{2, 7}));
    full_attention(in, out);
    {
      AcctScope inner(3, 1);
      full_attention(in, out);
    }
    // Inner scope restored on destruction.
    EXPECT_EQ(AcctScope::current(), (std::pair<long long, long long>{2, 7}));
  }
  EXPECT_EQ(AcctScope::current(), (std::pair<long long, long long>{-1, -1}));

  const auto snap = ResourceAccountant::global().snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first.kernel, "full");
  EXPECT_EQ(snap[0].first.layer, 2);
  EXPECT_EQ(snap[0].first.head, 7);
  EXPECT_EQ(snap[1].first.layer, 3);
  EXPECT_EQ(snap[1].first.head, 1);
  // The kernel runs its loops on pool workers but charges on the calling
  // thread, so both charges carry the scope despite the parallel_for.
  EXPECT_DOUBLE_EQ(snap[0].second.flops, snap[1].second.flops);
}

TEST_F(AccountingTest, RequestContextAccumulatesAndInnerShadowsOuter) {
  AttentionInput in = random_input(8, 8, 4, 7);
  Matrix out;
  const double one_call = expect_flops(4, exact_evals(8, 8));

  RequestContext outer("req-A");
  flash_attention(in, out);
  EXPECT_DOUBLE_EQ(outer.usage().flops, one_call);
  {
    RequestContext inner("req-B");
    EXPECT_EQ(RequestContext::current(), &inner);
    flash_attention(in, out);
    EXPECT_DOUBLE_EQ(inner.usage().flops, one_call);
  }
  // The inner request's work did not leak into the outer one.
  EXPECT_EQ(RequestContext::current(), &outer);
  EXPECT_DOUBLE_EQ(outer.usage().flops, one_call);
}

TEST_F(AccountingTest, DisabledModeDropsEverything) {
  obs::set_enabled(false);
  AttentionInput in = random_input(8, 8, 4, 8);
  Matrix out;
  flash_attention(in, out);
  obs::charge_stage("sampling", 10.0, 20.0);
  EXPECT_DOUBLE_EQ(ResourceAccountant::global().total().flops, 0.0);
  EXPECT_TRUE(ResourceAccountant::global().snapshot().empty());
  // publish_* are no-ops too: the registry stays empty.
  obs::publish_accounting();
  perf::publish_model_error();
  EXPECT_TRUE(obs::MetricsRegistry::global().snapshot().gauges.empty());
}

// ---------------------------------------------------------------------------
// Gauge publication.

double gauge_value(const std::string& name) {
  return obs::MetricsRegistry::global().gauge(name).value();
}

TEST_F(AccountingTest, PublishAccountingEmitsPerKernelGauges) {
  AttentionInput in = random_input(8, 8, 4, 9);
  Matrix out;
  flash_attention(in, out);
  full_attention(in, out);
  obs::publish_accounting();

  const ResourceUsage flash = ResourceAccountant::global().kernel_total("flash");
  const ResourceUsage full = ResourceAccountant::global().kernel_total("full");
  EXPECT_DOUBLE_EQ(gauge_value("acct.flash.flops"), flash.flops);
  EXPECT_DOUBLE_EQ(gauge_value("acct.flash.bytes"), flash.bytes);
  EXPECT_DOUBLE_EQ(gauge_value("acct.flash.calls"), 1.0);
  EXPECT_DOUBLE_EQ(gauge_value("acct.flash.intensity"), flash.intensity());
  EXPECT_DOUBLE_EQ(gauge_value("acct.total.flops"), flash.flops + full.flops);
  EXPECT_DOUBLE_EQ(gauge_value("acct.total.bytes"), flash.bytes + full.bytes);
}

TEST_F(AccountingTest, ModelErrorGaugesAlwaysIncludeMaxRel) {
  // Nothing ran: max_rel is still published (0), so the regression gate has
  // a gauge to check in every report.
  perf::publish_model_error();
  EXPECT_DOUBLE_EQ(gauge_value("perf.model_error.max_rel"), 0.0);

  AttentionInput in = random_input(64, 64, 8, 10);
  Matrix out;
  flash_attention(in, out);
  full_attention(in, out);
  perf::publish_model_error();
  // Small shapes carry the largest discretization error (~1/s), but the
  // model must still track the accounted counts closely.
  EXPECT_GT(gauge_value("perf.model_error.flash.flops_rel"), 0.0);
  EXPECT_LT(gauge_value("perf.model_error.flash.flops_rel"), 0.05);
  EXPECT_LT(gauge_value("perf.model_error.full.bytes_rel"), 0.05);
  EXPECT_GE(gauge_value("perf.model_error.max_rel"),
            gauge_value("perf.model_error.flash.flops_rel"));
}

// ---------------------------------------------------------------------------
// Acceptance: dense flash vs. the analytic cost model at S in {1K, 4K, 16K}.

TEST_F(AccountingTest, DenseFlashMatchesAttentionFlopsWithinOnePercent) {
  ModelConfig one_head;
  one_head.n_layers = 1;
  one_head.n_heads = 1;
  one_head.head_dim = 16;

  for (const Index s : {Index{1024}, Index{4096}, Index{16384}}) {
    ResourceAccountant::global().reset();
    AttentionInput in = random_input(s, s, one_head.head_dim, 11);
    Matrix out;
    flash_attention(in, out);

    const double accounted = ResourceAccountant::global().kernel_total("flash").flops;
    const double model = attention_flops(one_head, s);
    ASSERT_GT(model, 0.0);
    EXPECT_LT(std::abs(accounted - model) / model, 0.01)
        << "S=" << s << " accounted=" << accounted << " model=" << model;

    // The per-shape validation view agrees and stays under the regression
    // gate's default threshold.
    const perf::ModelErrorReport report = perf::validate_cost_model();
    ASSERT_EQ(report.kernels.size(), 1u);
    EXPECT_EQ(report.kernels[0].kernel, "flash");
    EXPECT_LT(report.max_rel, 0.01) << "S=" << s;
  }
}

TEST_F(AccountingTest, ModelValidationSweepsOnlyDenseKernels) {
  AttentionInput in = random_input(32, 32, 8, 12);
  StructuredMask mask(32, 32);
  mask.set_window(4);
  Matrix out;
  sparse_flash_attention(in, mask, out);  // sparse: prediction needs density
  flash_attention(in, out);

  const perf::ModelErrorReport report = perf::validate_cost_model();
  ASSERT_EQ(report.kernels.size(), 1u);
  EXPECT_EQ(report.kernels[0].kernel, "flash");
}

// ---------------------------------------------------------------------------
// Disabled-mode overhead smoke test (observability-tax guard).

// Verbatim replica of the flash_attention tile loop with every accounting /
// span hook removed — the "no-hooks build" the instrumented kernel is
// measured against. Kept in sync by eye; the equality check below catches a
// divergence in results, and the closed-form tests above catch one in
// accounting.
void flash_attention_no_hooks(const AttentionInput& in, Matrix& out, const FlashConfig& cfg) {
  const Index sq = in.sq(), sk = in.sk(), d = in.head_dim();
  out.resize(sq, d);
  const Index n_qtiles = (sq + cfg.tile_q - 1) / cfg.tile_q;
  parallel_for(n_qtiles, [&](Index qt) {
    const Index q_lo = qt * cfg.tile_q;
    const Index q_hi = std::min(sq, q_lo + cfg.tile_q);
    const Index rows = q_hi - q_lo;
    std::vector<float> m(static_cast<std::size_t>(rows), -std::numeric_limits<float>::infinity());
    std::vector<double> l(static_cast<std::size_t>(rows), 0.0);
    Matrix acc(rows, d);
    std::vector<float> logits(static_cast<std::size_t>(cfg.tile_k));
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    const Index tile_k_max = causal_limit(q_hi - 1, sq, sk);
    for (Index k_lo = 0; k_lo <= tile_k_max; k_lo += cfg.tile_k) {
      const Index k_hi = std::min(tile_k_max + 1, k_lo + cfg.tile_k);
      for (Index r = 0; r < rows; ++r) {
        const Index i = q_lo + r;
        const Index lim = causal_limit(i, sq, sk);
        if (k_lo > lim) continue;
        const Index jn = std::min(k_hi, lim + 1);
        const auto qi = in.q.row(i);
        float tile_max = -std::numeric_limits<float>::infinity();
        for (Index j = k_lo; j < jn; ++j) {
          const float s = scale * dot(qi, in.k.row(j));
          logits[static_cast<std::size_t>(j - k_lo)] = s;
          tile_max = std::max(tile_max, s);
        }
        const std::size_t rr = static_cast<std::size_t>(r);
        auto arow = acc.row(r);
        if (tile_max > m[rr]) {
          const float rescale = std::exp(m[rr] - tile_max);
          for (float& a : arow) a *= rescale;
          l[rr] *= rescale;
          m[rr] = tile_max;
        }
        for (Index j = k_lo; j < jn; ++j) {
          const float w = std::exp(logits[static_cast<std::size_t>(j - k_lo)] - m[rr]);
          l[rr] += w;
          axpy(w, in.v.row(j), arow);
        }
      }
    }
    for (Index r = 0; r < rows; ++r) {
      auto orow = out.row(q_lo + r);
      const double denom = l[static_cast<std::size_t>(r)];
      if (denom <= 0.0) {
        std::fill(orow.begin(), orow.end(), 0.0f);
        continue;
      }
      const auto inv = static_cast<float>(1.0 / denom);
      auto arow = acc.row(r);
      for (Index t = 0; t < d; ++t)
        orow[static_cast<std::size_t>(t)] = arow[static_cast<std::size_t>(t)] * inv;
    }
  });
}

bool built_with_sanitizers() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST_F(AccountingTest, DisabledModeOverheadUnderTwoPercentAtS4096) {
  if (built_with_sanitizers()) {
    GTEST_SKIP() << "wall-time comparison is not meaningful under sanitizers";
  }
  // The guard the issue asks for: with collection off, the accounting/span
  // hooks left in the flash hot loop (the per-row eval tally, one atomic
  // add per tile, a dropped charge and span) must cost < 2% wall time
  // against the hook-free replica above at S = 4096.
  obs::set_enabled(false);
  const Index s = 4096, d = 64;
  AttentionInput in = random_input(s, s, d, 13);
  Matrix out_hooks, out_plain;

  // Warm both paths (thread pool spin-up, page faults).
  flash_attention(in, out_hooks);
  flash_attention_no_hooks(in, out_plain, FlashConfig{});
  // The replica must still compute the same thing, or the comparison is
  // meaningless.
  ASSERT_LT(max_abs_diff(out_hooks, out_plain), 1e-6f);

  // Interleaved min-of-N, with up to three attempts: the bound is on the
  // hooks themselves, so one clean measurement window suffices — retries
  // absorb noisy-neighbor interference without loosening the 2% bar.
  using clock = std::chrono::steady_clock;
  constexpr int kReps = 5;
  constexpr int kAttempts = 3;
  double ratio = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < kAttempts && !(ratio < 1.02); ++attempt) {
    double best_hooks = std::numeric_limits<double>::infinity();
    double best_plain = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      // Interleave A/B so drift (thermal, noisy neighbors) hits both sides.
      auto t0 = clock::now();
      flash_attention(in, out_hooks);
      auto t1 = clock::now();
      flash_attention_no_hooks(in, out_plain, FlashConfig{});
      auto t2 = clock::now();
      best_hooks = std::min(best_hooks, std::chrono::duration<double>(t1 - t0).count());
      best_plain = std::min(best_plain, std::chrono::duration<double>(t2 - t1).count());
    }
    ASSERT_GT(best_plain, 0.0);
    ratio = best_hooks / best_plain;
  }
  EXPECT_LT(ratio, 1.02);
}

}  // namespace
}  // namespace sattn
