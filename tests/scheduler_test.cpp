// Tests for the serving-queue simulator and layer-level planning.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/full_attention.h"
#include "metrics/recovery.h"
#include "model/workload.h"
#include "runtime/scheduler.h"
#include "sample_attention/layer_plan.h"

namespace sattn {
namespace {

TEST(Engine, PrefillLatencyOrdering) {
  Engine sdpa, fa2, sa;
  sdpa.kind = EngineKind::kSdpa;
  fa2.kind = EngineKind::kFlashAttention;
  sa.kind = EngineKind::kSampleAttention;
  sa.kept_density = 0.20;
  const Index s = 96 * 1024;
  EXPECT_GT(sdpa.prefill_seconds(s), fa2.prefill_seconds(s));
  EXPECT_GT(fa2.prefill_seconds(s), sa.prefill_seconds(s));
}

TEST(Engine, QuadraticGrowth) {
  Engine fa2;
  fa2.kind = EngineKind::kFlashAttention;
  const double t1 = fa2.prefill_seconds(64 * 1024);
  const double t2 = fa2.prefill_seconds(128 * 1024);
  EXPECT_GT(t2, 2.5 * t1);
}

TEST(Scheduler, SingleRequestNoQueueing) {
  Engine fa2;
  std::vector<ServingRequest> reqs = {{"r0", 32768, 1.0}};
  const auto done = simulate_queue(reqs, fa2);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].queueing(), 0.0);
  EXPECT_NEAR(done[0].ttft(), fa2.prefill_seconds(32768), 1e-9);
}

TEST(Scheduler, FcfsQueueingAccumulates) {
  Engine fa2;
  // Two requests arriving together: the second waits for the first.
  std::vector<ServingRequest> reqs = {{"r0", 65536, 0.0}, {"r1", 8192, 0.0}};
  const auto done = simulate_queue(reqs, fa2);
  ASSERT_EQ(done.size(), 2u);
  const CompletedRequest& second = done[1];
  EXPECT_EQ(second.request.id, "r1");
  EXPECT_NEAR(second.queueing(), fa2.prefill_seconds(65536), 1e-9);
}

TEST(Scheduler, ChunkQuantumBoundsHeadOfLineBlocking) {
  Engine fa2;
  // A monster request followed shortly by a tiny one: with chunked
  // round-robin the tiny one's TTFT is far smaller than FCFS.
  std::vector<ServingRequest> reqs = {{"big", 262144, 0.0}, {"small", 4096, 0.01}};
  const auto fcfs = simulate_queue(reqs, fa2, 0);
  const auto rr = simulate_queue(reqs, fa2, 8192);
  const auto find = [](const std::vector<CompletedRequest>& v, const std::string& id) {
    for (const auto& c : v) {
      if (c.request.id == id) return c.ttft();
    }
    return -1.0;
  };
  EXPECT_LT(find(rr, "small"), 0.25 * find(fcfs, "small"));
  // Total work is conserved: makespans match closely.
  EXPECT_NEAR(summarize(fcfs).makespan, summarize(rr).makespan, 1e-6);
}

TEST(Scheduler, SampleEngineImprovesMeanTtft) {
  const auto trace = synthetic_trace(12, 16 * 1024, 128 * 1024, 5.0);
  Engine fa2, sa;
  fa2.kind = EngineKind::kFlashAttention;
  sa.kind = EngineKind::kSampleAttention;
  sa.kept_density = 0.25;
  const ServingSummary s_fa2 = summarize(simulate_queue(trace, fa2));
  const ServingSummary s_sa = summarize(simulate_queue(trace, sa));
  EXPECT_LT(s_sa.mean_ttft, s_fa2.mean_ttft);
  EXPECT_LT(s_sa.makespan, s_fa2.makespan);
  // Queueing amplification: the TTFT gain exceeds the raw prefill gain on a
  // busy queue.
  EXPECT_GT(s_fa2.mean_ttft / s_sa.mean_ttft, 1.0);
}

TEST(Scheduler, TraceIsDeterministicAndSorted) {
  const auto a = synthetic_trace(20, 1024, 65536, 2.0, 7);
  const auto b = synthetic_trace(20, 1024, 65536, 2.0, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].prompt_tokens, b[r].prompt_tokens);
    EXPECT_DOUBLE_EQ(a[r].arrival_seconds, b[r].arrival_seconds);
    if (r > 0) EXPECT_GE(a[r].arrival_seconds, a[r - 1].arrival_seconds);
    EXPECT_GE(a[r].prompt_tokens, 1024);
    EXPECT_LE(a[r].prompt_tokens, 65536 + 1);
  }
}

TEST(LayerPlan, PlansEveryHead) {
  const ModelConfig model = chatglm2_6b();
  const ContentSpec content = plain_prompt(3, 256);
  const LayerPlan plan = plan_layer(model, content, 8);
  EXPECT_EQ(static_cast<Index>(plan.head_plans.size()), model.n_heads);
  EXPECT_EQ(plan.planned_heads, model.n_heads);
  EXPECT_GT(plan.mean_density, 0.0);
  EXPECT_LT(plan.mean_density, 1.0);
}

TEST(LayerPlan, GroupSharingCutsPlanningWork) {
  const ModelConfig model = chatglm2_6b();  // 32 heads, 2 KV groups
  const ContentSpec content = plain_prompt(4, 256);
  LayerPlanOptions shared;
  shared.share_within_kv_group = true;
  const LayerPlan per_head = plan_layer(model, content, 8);
  const LayerPlan grouped = plan_layer(model, content, 8, shared);
  EXPECT_EQ(grouped.planned_heads, model.n_kv_heads);
  EXPECT_LT(grouped.mean_overhead, 0.25 * per_head.mean_overhead);
}

TEST(LayerPlan, RunLayerOutputsAreNearLossless) {
  const ModelConfig model = chatglm2_6b();
  const ContentSpec content = plain_prompt(5, 256);
  const Index layer = 8;
  const LayerPlan plan = plan_layer(model, content, layer);
  const auto outputs = run_layer(model, content, layer, plan);
  ASSERT_EQ(static_cast<Index>(outputs.size()), model.n_heads);
  double worst = 0.0;
  for (Index head = 0; head < model.n_heads; head += 8) {
    const AttentionInput in = generate_attention(model, content, layer, head);
    Matrix exact;
    full_attention(in, exact);
    worst = std::max(worst,
                     recovery_stats(outputs[static_cast<std::size_t>(head)], exact).rel_l1);
  }
  EXPECT_LT(worst, 0.15);
}

TEST(LayerPlan, SharedPlansLoseLittleOnGroupedModel) {
  // InternLM2-like config has 8 KV groups of 4 query heads; sharing I_KV
  // within a group should cost only a modest accuracy delta.
  const ModelConfig model = internlm2_7b();
  const ContentSpec content = plain_prompt(6, 256);
  const Index layer = 8;
  LayerPlanOptions shared;
  shared.share_within_kv_group = true;
  const LayerPlan grouped = plan_layer(model, content, layer, shared);
  const auto outputs = run_layer(model, content, layer, grouped);
  double worst = 0.0;
  for (Index head = 0; head < model.n_heads; head += 8) {
    const AttentionInput in = generate_attention(model, content, layer, head);
    Matrix exact;
    full_attention(in, exact);
    worst = std::max(worst,
                     recovery_stats(outputs[static_cast<std::size_t>(head)], exact).rel_l1);
  }
  EXPECT_LT(worst, 0.35) << "group-shared plans degraded too much";
}

}  // namespace
}  // namespace sattn
