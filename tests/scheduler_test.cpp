// Tests for the serving-queue simulator and layer-level planning.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/full_attention.h"
#include "metrics/recovery.h"
#include "model/workload.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/scheduler.h"
#include "sample_attention/layer_plan.h"

namespace sattn {
namespace {

TEST(Engine, PrefillLatencyOrdering) {
  Engine sdpa, fa2, sa;
  sdpa.kind = EngineKind::kSdpa;
  fa2.kind = EngineKind::kFlashAttention;
  sa.kind = EngineKind::kSampleAttention;
  sa.kept_density = 0.20;
  const Index s = 96 * 1024;
  EXPECT_GT(sdpa.prefill_seconds(s), fa2.prefill_seconds(s));
  EXPECT_GT(fa2.prefill_seconds(s), sa.prefill_seconds(s));
}

TEST(Engine, QuadraticGrowth) {
  Engine fa2;
  fa2.kind = EngineKind::kFlashAttention;
  const double t1 = fa2.prefill_seconds(64 * 1024);
  const double t2 = fa2.prefill_seconds(128 * 1024);
  EXPECT_GT(t2, 2.5 * t1);
}

TEST(Scheduler, SingleRequestNoQueueing) {
  Engine fa2;
  std::vector<ServingRequest> reqs = {{"r0", 32768, 1.0}};
  const auto done = simulate_queue(reqs, fa2);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].queueing(), 0.0);
  EXPECT_NEAR(done[0].ttft(), fa2.prefill_seconds(32768), 1e-9);
}

TEST(Scheduler, FcfsQueueingAccumulates) {
  Engine fa2;
  // Two requests arriving together: the second waits for the first.
  std::vector<ServingRequest> reqs = {{"r0", 65536, 0.0}, {"r1", 8192, 0.0}};
  const auto done = simulate_queue(reqs, fa2);
  ASSERT_EQ(done.size(), 2u);
  const CompletedRequest& second = done[1];
  EXPECT_EQ(second.request.id, "r1");
  EXPECT_NEAR(second.queueing(), fa2.prefill_seconds(65536), 1e-9);
}

TEST(Scheduler, ChunkQuantumBoundsHeadOfLineBlocking) {
  Engine fa2;
  // A monster request followed shortly by a tiny one: with chunked
  // round-robin the tiny one's TTFT is far smaller than FCFS.
  std::vector<ServingRequest> reqs = {{"big", 262144, 0.0}, {"small", 4096, 0.01}};
  const auto fcfs = simulate_queue(reqs, fa2, 0);
  const auto rr = simulate_queue(reqs, fa2, 8192);
  const auto find = [](const std::vector<CompletedRequest>& v, const std::string& id) {
    for (const auto& c : v) {
      if (c.request.id == id) return c.ttft();
    }
    return -1.0;
  };
  EXPECT_LT(find(rr, "small"), 0.25 * find(fcfs, "small"));
  // Total work is conserved: makespans match closely.
  EXPECT_NEAR(summarize(fcfs).makespan, summarize(rr).makespan, 1e-6);
}

// Satellite regression (docs/ROBUSTNESS.md): chunk_quantum_tokens = 0 must
// be exactly FCFS — every request's finish time equals the analytic fold of
// arrival-sorted prefill times.
TEST(Scheduler, ZeroQuantumIsExactlyFcfs) {
  Engine fa2;
  std::vector<ServingRequest> reqs = {
      {"a", 65536, 0.0}, {"b", 8192, 0.5}, {"c", 131072, 0.6}, {"d", 4096, 0.7}};
  const auto done = simulate_queue(reqs, fa2, 0);
  ASSERT_EQ(done.size(), 4u);
  double clock = 0.0;
  for (std::size_t r = 0; r < done.size(); ++r) {
    EXPECT_EQ(done[r].request.id, reqs[r].id) << "FCFS must preserve arrival order";
    clock = std::max(clock, reqs[r].arrival_seconds) + fa2.prefill_seconds(reqs[r].prompt_tokens);
    EXPECT_NEAR(done[r].finish_seconds, clock, 1e-9);
  }
}

// Fairness audit regression: quanta are billed at the progressive prefix
// cost, so a request arriving just after a monster request started waits
// roughly one (cheap, early) chunk — not a chunk billed at the monster's
// average per-token cost, which for quadratic prefill front-loads cost that
// real chunked prefill pays at the end.
TEST(Scheduler, MidQuantumArrivalNotOvercharged) {
  Engine fa2;
  const Index quantum = 8192;
  std::vector<ServingRequest> reqs = {{"big", 262144, 0.0}, {"small", 4096, 0.01}};
  const auto done = simulate_queue(reqs, fa2, quantum);
  double small_queueing = -1.0;
  for (const auto& c : done) {
    if (c.request.id == "small") small_queueing = c.queueing();
  }
  ASSERT_GE(small_queueing, 0.0);
  // Early chunks of "big" attend short prefixes: the worst case for "small"
  // is a couple of short-prefix quanta, far below one average-cost quantum
  // (prefill(262144) / 262144 * 8192, which front-loads the quadratic tail).
  const double avg_cost_quantum =
      fa2.prefill_seconds(262144) / 262144.0 * static_cast<double>(quantum);
  EXPECT_LT(small_queueing, 0.5 * avg_cost_quantum);
  EXPECT_LE(small_queueing, 1.05 * fa2.prefill_seconds(2 * quantum));
}

TEST(Scheduler, SummaryPercentiles) {
  std::vector<CompletedRequest> done;
  for (int r = 0; r < 100; ++r) {
    CompletedRequest c;
    c.request.arrival_seconds = 0.0;
    c.start_seconds = 0.0;
    c.finish_seconds = static_cast<double>(r + 1);
    done.push_back(c);
  }
  const ServingSummary s = summarize(done);
  EXPECT_DOUBLE_EQ(s.p50_ttft, 50.0);
  EXPECT_DOUBLE_EQ(s.p99_ttft, 99.0);
  EXPECT_DOUBLE_EQ(s.max_ttft, 100.0);
}

TEST(SloServing, DegradationKeepsP99InsideSlo) {
  // Overload trace: SampleAttention engine with SLO steering keeps every
  // completed request inside the deadline by degrading the density budget,
  // and serves more than shedding-only FCFS at full quality would.
  Engine sa;
  sa.kind = EngineKind::kSampleAttention;
  sa.kept_density = 0.25;
  const auto trace = synthetic_trace(32, 64 * 1024, 256 * 1024, 4.0, 11).value();
  SloOptions opts;
  opts.slo_ttft_seconds = 60.0;
  opts.deadline_seconds = 60.0;
  const SloServingResult res = simulate_queue_slo(trace, sa, opts).value();
  EXPECT_EQ(res.completed.size() + res.shed.size(), trace.size());
  ASSERT_FALSE(res.completed.empty());
  const ServingSummary s = summarize(res.completed);
  EXPECT_LE(s.p99_ttft, opts.slo_ttft_seconds + 1e-9);
  EXPECT_GT(res.degraded, 0) << "overload should trigger the degrade ladder";
}

TEST(SloServing, DegradeLadderEarnsThroughputWhenPaced) {
  // Arrival rate between the degraded and full-quality service rates: the
  // degrading queue keeps pace and serves (almost) everything; the rigid
  // single-level queue falls behind and sheds every other request.
  Engine sa;
  sa.kind = EngineKind::kSampleAttention;
  sa.kept_density = 0.25;
  const Index prompt = 262144;
  const double c_full = sa.prefill_seconds(prompt, 1.0);
  const double c_min = sa.prefill_seconds(prompt, 0.35);
  ASSERT_LT(c_min, 0.75 * c_full) << "ladder must buy real time for this scenario";
  const double gap = 0.5 * (c_full + c_min);  // between the two service rates
  std::vector<ServingRequest> reqs;
  for (int r = 0; r < 16; ++r) {
    reqs.push_back({"r" + std::to_string(r), prompt, gap * r});
  }
  SloOptions opts;
  opts.slo_ttft_seconds = opts.deadline_seconds = 1.2 * c_full;

  const SloServingResult adaptive = simulate_queue_slo(reqs, sa, opts).value();
  SloOptions rigid_opts = opts;
  rigid_opts.degrade_density_scale = {1.0};
  const SloServingResult rigid = simulate_queue_slo(reqs, sa, rigid_opts).value();

  EXPECT_GT(adaptive.completed.size(), rigid.completed.size());
  EXPECT_LT(adaptive.shed.size(), rigid.shed.size());
  EXPECT_GT(adaptive.degraded, 0);
  EXPECT_LE(summarize(adaptive.completed).p99_ttft, opts.deadline_seconds + 1e-9);
  EXPECT_LE(summarize(rigid.completed).p99_ttft, opts.deadline_seconds + 1e-9);
}

TEST(SloServing, AdmissionAndOversizedShedding) {
  Engine fa2;
  std::vector<ServingRequest> reqs;
  for (int r = 0; r < 8; ++r) {
    reqs.push_back({"r" + std::to_string(r), 65536, 0.0});
  }
  reqs.push_back({"huge", 1 << 20, 0.0});
  SloOptions opts;
  opts.max_queue_depth = 3;
  opts.max_prompt_tokens = 512 * 1024;
  const SloServingResult res = simulate_queue_slo(reqs, fa2, opts).value();
  EXPECT_EQ(res.completed.size() + res.shed.size(), reqs.size());
  bool saw_admission = false, saw_oversized = false;
  for (const ShedRequest& s : res.shed) {
    saw_admission = saw_admission || s.reason == "admission";
    if (s.request.id == "huge") {
      saw_oversized = true;
      EXPECT_EQ(s.reason, "oversized");
    }
  }
  EXPECT_TRUE(saw_admission);
  EXPECT_TRUE(saw_oversized);
}

TEST(SloServing, RetriesWithBackoffThenExhaustion) {
  Engine fa2;
  std::vector<ServingRequest> reqs = {{"r0", 32768, 0.0}, {"r1", 32768, 1.0}};
  SloOptions opts;
  opts.fault_rate = 1.0;  // every attempt fails deterministically
  opts.max_retries = 2;
  opts.retry_backoff_seconds = 1.0;
  const SloServingResult res = simulate_queue_slo(reqs, fa2, opts).value();
  EXPECT_TRUE(res.completed.empty());
  ASSERT_EQ(res.shed.size(), 2u);
  for (const ShedRequest& s : res.shed) EXPECT_EQ(s.reason, "retries_exhausted");
  EXPECT_EQ(res.retries, 4);  // 2 retries per request before exhaustion

  // With a moderate fault rate requests eventually complete, having
  // recorded their attempts.
  opts.fault_rate = 0.5;
  opts.max_retries = 8;
  const SloServingResult partial = simulate_queue_slo(reqs, fa2, opts).value();
  EXPECT_EQ(partial.completed.size() + partial.shed.size(), reqs.size());
  for (const CompletedRequest& c : partial.completed) EXPECT_GE(c.attempts, 1);
}

TEST(SloServing, DeterministicInSeed) {
  Engine sa;
  sa.kind = EngineKind::kSampleAttention;
  const auto trace = synthetic_trace(24, 32 * 1024, 192 * 1024, 3.0, 13).value();
  SloOptions opts;
  opts.slo_ttft_seconds = 80.0;
  opts.deadline_seconds = 100.0;
  opts.fault_rate = 0.2;
  opts.stall_rate = 0.1;
  opts.chunk_quantum_tokens = 8192;
  const SloServingResult a = simulate_queue_slo(trace, sa, opts).value();
  const SloServingResult b = simulate_queue_slo(trace, sa, opts).value();
  ASSERT_EQ(a.completed.size(), b.completed.size());
  ASSERT_EQ(a.shed.size(), b.shed.size());
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.stalls, b.stalls);
  for (std::size_t r = 0; r < a.completed.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.completed[r].finish_seconds, b.completed[r].finish_seconds);
    EXPECT_EQ(a.completed[r].degrade_level, b.completed[r].degrade_level);
  }
}

TEST(SloServing, RejectsInvalidOptions) {
  Engine fa2;
  std::vector<ServingRequest> reqs = {{"r0", 1024, 0.0}};
  SloOptions bad;
  bad.fault_rate = 1.5;
  EXPECT_EQ(simulate_queue_slo(reqs, fa2, bad).status().code(), StatusCode::kInvalidArgument);
  SloOptions ladder;
  ladder.degrade_density_scale = {0.5, 0.25};  // must start at 1.0
  EXPECT_EQ(simulate_queue_slo(reqs, fa2, ladder).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(synthetic_trace(0, 16, 32, 1.0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(synthetic_trace(4, 32, 16, 1.0).status().code(), StatusCode::kInvalidArgument);
}

TEST(SloServing, DegradedEngineIsFaster) {
  Engine sa;
  sa.kind = EngineKind::kSampleAttention;
  sa.kept_density = 0.25;
  const Index s = 128 * 1024;
  EXPECT_LT(sa.prefill_seconds(s, 0.35), sa.prefill_seconds(s, 0.6));
  EXPECT_LT(sa.prefill_seconds(s, 0.6), sa.prefill_seconds(s, 1.0));
  // Exact engines ignore the scale.
  Engine fa2;
  EXPECT_DOUBLE_EQ(fa2.prefill_seconds(s, 0.35), fa2.prefill_seconds(s, 1.0));
}

TEST(Scheduler, SampleEngineImprovesMeanTtft) {
  const auto trace = synthetic_trace(12, 16 * 1024, 128 * 1024, 5.0).value();
  Engine fa2, sa;
  fa2.kind = EngineKind::kFlashAttention;
  sa.kind = EngineKind::kSampleAttention;
  sa.kept_density = 0.25;
  const ServingSummary s_fa2 = summarize(simulate_queue(trace, fa2));
  const ServingSummary s_sa = summarize(simulate_queue(trace, sa));
  EXPECT_LT(s_sa.mean_ttft, s_fa2.mean_ttft);
  EXPECT_LT(s_sa.makespan, s_fa2.makespan);
  // Queueing amplification: the TTFT gain exceeds the raw prefill gain on a
  // busy queue.
  EXPECT_GT(s_fa2.mean_ttft / s_sa.mean_ttft, 1.0);
}

TEST(Scheduler, TraceIsDeterministicAndSorted) {
  const auto a = synthetic_trace(20, 1024, 65536, 2.0, 7).value();
  const auto b = synthetic_trace(20, 1024, 65536, 2.0, 7).value();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].prompt_tokens, b[r].prompt_tokens);
    EXPECT_DOUBLE_EQ(a[r].arrival_seconds, b[r].arrival_seconds);
    if (r > 0) EXPECT_GE(a[r].arrival_seconds, a[r - 1].arrival_seconds);
    EXPECT_GE(a[r].prompt_tokens, 1024);
    EXPECT_LE(a[r].prompt_tokens, 65536 + 1);
  }
}

// Fixture for the per-request observability tests: metrics collection on,
// registries clean, and everything restored afterwards so the rest of the
// binary keeps running with collection off.
class SchedulerObs : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
    ASSERT_TRUE(obs::set_enabled(true)) << "SATTN_TRACE=0 in the test environment";
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Collector::global().reset();
    obs::MetricsRegistry::global().reset();
  }

  static double gauge_value(const obs::MetricsSnapshot& snap, const std::string& name) {
    for (const auto& [n, v] : snap.gauges)
      if (n == name) return v;
    ADD_FAILURE() << "gauge not found: " << name;
    return 0.0;
  }
};

TEST_F(SchedulerObs, FcfsAttributionSumsToTtftAndEmitsGauges) {
  Engine fa2;
  fa2.kind = EngineKind::kFlashAttention;
  const auto trace = synthetic_trace(12, 16 * 1024, 128 * 1024, 2.0, 5).value();
  const auto done = simulate_queue(trace, fa2, /*chunk_quantum_tokens=*/0, "fcfs_t");
  ASSERT_EQ(done.size(), trace.size());

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  std::string max_id;
  double max_ttft = -1.0;
  for (const CompletedRequest& c : done) {
    // The attribution invariant: the three components partition TTFT, and
    // without guardrails the FCFS queue books zero guard time and charges
    // exactly the engine's prefill cost as compute.
    EXPECT_NEAR(c.queue_seconds + c.compute_seconds + c.guard_seconds, c.ttft(), 1e-9)
        << c.request.id;
    EXPECT_DOUBLE_EQ(c.guard_seconds, 0.0) << c.request.id;
    EXPECT_NEAR(c.compute_seconds, fa2.prefill_seconds(c.request.prompt_tokens), 1e-9)
        << c.request.id;
    EXPECT_NEAR(c.queue_seconds, c.queueing(), 1e-9) << c.request.id;

    const std::string base = "request.fcfs_t/" + c.request.id + ".";
    EXPECT_NEAR(gauge_value(snap, base + "queue_s"), c.queue_seconds, 1e-12);
    EXPECT_NEAR(gauge_value(snap, base + "compute_s"), c.compute_seconds, 1e-12);
    EXPECT_NEAR(gauge_value(snap, base + "guard_s"), c.guard_seconds, 1e-12);
    EXPECT_NEAR(gauge_value(snap, base + "ttft_s"), c.ttft(), 1e-12);
    if (c.ttft() > max_ttft) {
      max_ttft = c.ttft();
      max_id = c.request.id;
    }
  }

  // The TTFT histogram carries request exemplars so report tails point at a
  // concrete request; the exemplar is the label-qualified key, matching the
  // `request.<label>/<id>.*` gauge names.
  bool found_hist = false;
  for (const auto& [name, stats] : snap.histograms) {
    if (name != "sched.ttft_seconds") continue;
    found_hist = true;
    EXPECT_EQ(stats.count, done.size());
    EXPECT_EQ(stats.max_exemplar, "fcfs_t/" + max_id);
    EXPECT_FALSE(stats.p99_exemplar.empty());
  }
  EXPECT_TRUE(found_hist) << "sched.ttft_seconds histogram missing";

  // Round-robin chunking must preserve the invariant, and the quanta
  // telescope so compute is still exactly the full prefill cost.
  obs::MetricsRegistry::global().reset();
  const auto rr = simulate_queue(trace, fa2, /*chunk_quantum_tokens=*/8192, "rr_t");
  ASSERT_EQ(rr.size(), trace.size());
  for (const CompletedRequest& c : rr) {
    EXPECT_NEAR(c.queue_seconds + c.compute_seconds + c.guard_seconds, c.ttft(), 1e-9)
        << c.request.id;
    EXPECT_DOUBLE_EQ(c.guard_seconds, 0.0) << c.request.id;
    EXPECT_NEAR(c.compute_seconds, fa2.prefill_seconds(c.request.prompt_tokens), 1e-9)
        << c.request.id;
  }

  // An empty run label drops the `<label>/` prefix rather than emitting a
  // dangling slash.
  obs::MetricsRegistry::global().reset();
  std::vector<ServingRequest> one = {{"r0", 32768, 0.0}};
  (void)simulate_queue(one, fa2);
  const obs::MetricsSnapshot plain = obs::MetricsRegistry::global().snapshot();
  EXPECT_GT(gauge_value(plain, "request.r0.ttft_s"), 0.0);
}

TEST_F(SchedulerObs, MidStreamEscalationRebillsInFlightChunkToGuard) {
  // A stalled chunk reveals mid-prefill that the first-service projection
  // was optimistic; the ladder must fire *during* service and the chunk in
  // flight when it fired — planned under the abandoned density budget and
  // redone at the new level — must be re-billed from compute to guard.
  // Deterministic cost substrate: level-0 prefill of the 1000-token request
  // costs 1.0s (0.25s per 250-token chunk), level 1 half that.
  Engine sa;
  sa.kind = EngineKind::kSampleAttention;
  sa.cost_override = [](Index prompt_tokens, double density_scale) {
    return density_scale * static_cast<double>(prompt_tokens) * 1e-3;
  };
  SloOptions opts;
  opts.slo_ttft_seconds = 1.1;  // level-0 projection (1.0s) fits at t=0
  opts.chunk_quantum_tokens = 250;
  opts.stall_rate = 1.0;  // every chunk stalls: measured > modeled
  opts.stall_factor = 3.0;
  opts.degrade_density_scale = {1.0, 0.5};
  opts.run_label = "mid_t";
  const std::vector<ServingRequest> trace = {{"r0", 1000, 0.0}};
  const SloServingResult res = simulate_queue_slo(trace, sa, opts).value();

  ASSERT_EQ(res.completed.size(), 1u);
  const CompletedRequest& c = res.completed[0];
  EXPECT_EQ(c.degrade_level, 1);
  EXPECT_EQ(res.degraded, 1);

  // The attribution invariant survives the escalation, and compute is
  // exactly the final level's prefill cost — the escalated chunk's 0.25s
  // sits in guard, not double-counted into compute.
  EXPECT_NEAR(c.queue_seconds + c.compute_seconds + c.guard_seconds, c.ttft(), 1e-9);
  EXPECT_NEAR(c.compute_seconds, sa.prefill_seconds(1000, 0.5), 1e-9);
  EXPECT_GT(c.guard_seconds, 0.0);
  EXPECT_NEAR(c.queue_seconds, 0.0, 1e-9);

  bool found = false;
  for (const obs::CounterValue& cv : obs::Collector::global().counters()) {
    if (cv.name != "sched.midstream_escalations") continue;
    found = true;
    EXPECT_GE(cv.value, 1);
  }
  EXPECT_TRUE(found) << "sched.midstream_escalations counter missing";
}

TEST_F(SchedulerObs, SloAttributionSumsToTtftUnderFaultsAndStalls) {
  Engine sa;
  sa.kind = EngineKind::kSampleAttention;
  const auto trace = synthetic_trace(24, 32 * 1024, 192 * 1024, 3.0, 13).value();
  SloOptions opts;
  opts.slo_ttft_seconds = 80.0;
  opts.deadline_seconds = 100.0;
  opts.fault_rate = 0.2;
  opts.stall_rate = 0.1;
  opts.chunk_quantum_tokens = 8192;
  opts.run_label = "slo_t";
  const SloServingResult res = simulate_queue_slo(trace, sa, opts).value();
  ASSERT_FALSE(res.completed.empty());
  EXPECT_GT(res.retries + res.stalls, 0) << "trace should exercise the guardrails";

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  double total_guard = 0.0;
  for (const CompletedRequest& c : res.completed) {
    EXPECT_NEAR(c.queue_seconds + c.compute_seconds + c.guard_seconds, c.ttft(), 1e-9)
        << c.request.id;
    EXPECT_GE(c.queue_seconds, -1e-12) << c.request.id;
    EXPECT_GT(c.compute_seconds, 0.0) << c.request.id;
    EXPECT_GE(c.guard_seconds, -1e-12) << c.request.id;
    total_guard += c.guard_seconds;

    const std::string base = "request.slo_t/" + c.request.id + ".";
    EXPECT_NEAR(gauge_value(snap, base + "ttft_s"), c.ttft(), 1e-12);
    EXPECT_NEAR(gauge_value(snap, base + "guard_s"), c.guard_seconds, 1e-12);
  }
  // Injected faults/stalls must surface as guard time somewhere, not be
  // silently folded into queueing.
  EXPECT_GT(total_guard, 0.0);
}

TEST(LayerPlan, PlansEveryHead) {
  const ModelConfig model = chatglm2_6b();
  const ContentSpec content = plain_prompt(3, 256);
  const LayerPlan plan = plan_layer(model, content, 8);
  EXPECT_EQ(static_cast<Index>(plan.head_plans.size()), model.n_heads);
  EXPECT_EQ(plan.planned_heads, model.n_heads);
  EXPECT_GT(plan.mean_density, 0.0);
  EXPECT_LT(plan.mean_density, 1.0);
}

TEST(LayerPlan, GroupSharingCutsPlanningWork) {
  const ModelConfig model = chatglm2_6b();  // 32 heads, 2 KV groups
  const ContentSpec content = plain_prompt(4, 256);
  LayerPlanOptions shared;
  shared.share_within_kv_group = true;
  const LayerPlan per_head = plan_layer(model, content, 8);
  const LayerPlan grouped = plan_layer(model, content, 8, shared);
  EXPECT_EQ(grouped.planned_heads, model.n_kv_heads);
  EXPECT_LT(grouped.mean_overhead, 0.25 * per_head.mean_overhead);
}

TEST(LayerPlan, RunLayerOutputsAreNearLossless) {
  const ModelConfig model = chatglm2_6b();
  const ContentSpec content = plain_prompt(5, 256);
  const Index layer = 8;
  const LayerPlan plan = plan_layer(model, content, layer);
  const auto outputs = run_layer(model, content, layer, plan);
  ASSERT_EQ(static_cast<Index>(outputs.size()), model.n_heads);
  double worst = 0.0;
  for (Index head = 0; head < model.n_heads; head += 8) {
    const AttentionInput in = generate_attention(model, content, layer, head);
    Matrix exact;
    full_attention(in, exact);
    worst = std::max(worst,
                     recovery_stats(outputs[static_cast<std::size_t>(head)], exact).rel_l1);
  }
  EXPECT_LT(worst, 0.15);
}

TEST(LayerPlan, SharedPlansLoseLittleOnGroupedModel) {
  // InternLM2-like config has 8 KV groups of 4 query heads; sharing I_KV
  // within a group should cost only a modest accuracy delta.
  const ModelConfig model = internlm2_7b();
  const ContentSpec content = plain_prompt(6, 256);
  const Index layer = 8;
  LayerPlanOptions shared;
  shared.share_within_kv_group = true;
  const LayerPlan grouped = plan_layer(model, content, layer, shared);
  const auto outputs = run_layer(model, content, layer, grouped);
  double worst = 0.0;
  for (Index head = 0; head < model.n_heads; head += 8) {
    const AttentionInput in = generate_attention(model, content, layer, head);
    Matrix exact;
    full_attention(in, exact);
    worst = std::max(worst,
                     recovery_stats(outputs[static_cast<std::size_t>(head)], exact).rel_l1);
  }
  EXPECT_LT(worst, 0.35) << "group-shared plans degraded too much";
}

}  // namespace
}  // namespace sattn
