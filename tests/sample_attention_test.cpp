// End-to-end tests for the SampleAttention pipeline (plan + kernel).
#include <gtest/gtest.h>

#include <algorithm>

#include "attention/full_attention.h"
#include "metrics/recovery.h"
#include "model/workload.h"
#include "sample_attention/sample_attention.h"

namespace sattn {
namespace {

AttentionInput structured_input(Index s, std::uint64_t seed) {
  const ModelConfig model = chatglm2_6b();
  return generate_attention(model, plain_prompt(seed, s), /*layer=*/8, /*head=*/3);
}

TEST(SampleAttention, PlanProducesValidMask) {
  const AttentionInput in = structured_input(512, 1);
  const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
  EXPECT_EQ(plan.mask.sq(), 512);
  EXPECT_EQ(plan.mask.sk(), 512);
  EXPECT_GT(plan.mask.window(), 0);
  EXPECT_GT(plan.density, 0.0);
  EXPECT_LT(plan.density, 1.0);
  EXPECT_GT(plan.overhead_fraction, 0.0);
  EXPECT_LT(plan.overhead_fraction, 0.2);
}

TEST(SampleAttention, WindowMatchesRatio) {
  const AttentionInput in = structured_input(500, 2);
  SampleAttentionConfig cfg;
  cfg.window_ratio = 0.08;
  const SamplePlan plan = plan_sample_attention(in, cfg);
  EXPECT_EQ(plan.mask.window(), 40);  // ceil(0.08 * 500)
}

TEST(SampleAttention, OutputCloseToFullAttention) {
  const AttentionInput in = structured_input(512, 3);
  Matrix exact, approx;
  full_attention(in, exact);
  sample_attention(in, SampleAttentionConfig{}, approx);
  const RecoveryStats rec = recovery_stats(approx, exact);
  EXPECT_LT(rec.rel_l1, 0.08) << "not near-lossless on structured input";
}

TEST(SampleAttention, HigherAlphaKeepsMoreAndIsMoreAccurate) {
  const AttentionInput in = structured_input(512, 4);
  Matrix exact;
  full_attention(in, exact);

  SampleAttentionConfig lo, hi;
  lo.alpha = 0.80;
  hi.alpha = 0.98;
  Matrix out_lo, out_hi;
  SamplePlan plan_lo, plan_hi;
  sample_attention(in, lo, out_lo, &plan_lo);
  sample_attention(in, hi, out_hi, &plan_hi);

  EXPECT_LE(plan_lo.filter.kv_indices.size(), plan_hi.filter.kv_indices.size());
  EXPECT_LE(plan_lo.density, plan_hi.density + 1e-12);
  const double err_lo = recovery_stats(out_lo, exact).rel_l1;
  const double err_hi = recovery_stats(out_hi, exact).rel_l1;
  EXPECT_LE(err_hi, err_lo + 1e-6);
}

TEST(SampleAttention, KeepsPlantedCriticalColumn) {
  const ModelConfig model = chatglm2_6b();
  ContentSpec content = plain_prompt(5, 512);
  content.critical_positions = {200};
  content.critical_span = 4;
  const auto heads = retrieval_heads(model, 1);
  const AttentionInput in = generate_attention(model, content, heads[0].first, heads[0].second);
  const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
  // The needle column must be in I_KV (it is far outside the window).
  bool found = false;
  for (Index c : plan.filter.kv_indices) {
    if (c >= 200 && c < 204) found = true;
  }
  EXPECT_TRUE(found) << "content-critical stripe was filtered out";
}

TEST(SampleAttention, SinksAreDiscovered) {
  const AttentionInput in = structured_input(512, 6);
  const SamplePlan plan = plan_sample_attention(in, SampleAttentionConfig{});
  // Attention sinks (first columns) should appear in I_KV.
  const auto& cols = plan.filter.kv_indices;
  EXPECT_TRUE(std::binary_search(cols.begin(), cols.end(), Index{0}) ||
              std::binary_search(cols.begin(), cols.end(), Index{1}) ||
              std::binary_search(cols.begin(), cols.end(), Index{2}));
}

TEST(SampleAttention, DeterministicForSameInput) {
  const AttentionInput in = structured_input(256, 7);
  Matrix a, b;
  sample_attention(in, SampleAttentionConfig{}, a);
  sample_attention(in, SampleAttentionConfig{}, b);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0f);
}

TEST(SampleAttention, MethodInterfaceReportsPlanNumbers) {
  const AttentionInput in = structured_input(256, 8);
  SampleAttention method;
  const AttentionResult res = method.run(in);
  EXPECT_GT(res.density, 0.0);
  EXPECT_GT(res.overhead_density, 0.0);
  EXPECT_EQ(res.out.rows(), 256);
  EXPECT_EQ(method.name(), "SampleAttention(a=0.95)");
}

TEST(SampleAttention, ExactFilterNoWorseCoverageThanBucketed) {
  const AttentionInput in = structured_input(512, 9);
  SampleAttentionConfig bucketed, exact;
  bucketed.filter = FilterMode::kBucketed;
  exact.filter = FilterMode::kExact;
  const SamplePlan pb = plan_sample_attention(in, bucketed);
  const SamplePlan pe = plan_sample_attention(in, exact);
  // Bucketed rounds the kept count UP to a bucket cut, so it keeps at least
  // as many columns as the exact minimal solution.
  EXPECT_GE(pb.filter.kv_indices.size(), pe.filter.kv_indices.size());
}

TEST(SampleAttention, TinySequenceDoesNotCrash) {
  const AttentionInput in = structured_input(4, 10);
  Matrix out;
  sample_attention(in, SampleAttentionConfig{}, out);
  EXPECT_EQ(out.rows(), 4);
}

// Ablation property: density decreases monotonically as alpha decreases,
// across structured seeds.
class AlphaMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(AlphaMonotonicity, DensityMonotoneInAlpha) {
  const AttentionInput in = structured_input(384, 100 + static_cast<std::uint64_t>(GetParam()));
  double prev = -1.0;
  for (double alpha : {0.5, 0.8, 0.9, 0.95, 0.99}) {
    SampleAttentionConfig cfg;
    cfg.alpha = alpha;
    const SamplePlan plan = plan_sample_attention(in, cfg);
    EXPECT_GE(plan.density, prev - 1e-9) << "alpha=" << alpha;
    prev = plan.density;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlphaMonotonicity, ::testing::Range(0, 5));

}  // namespace
}  // namespace sattn
